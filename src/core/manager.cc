#include "core/manager.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

namespace viyojit::core
{

// ---------------------------------------------------------------------
// SimBackend
// ---------------------------------------------------------------------

std::uint64_t
ViyojitManager::SimBackend::pageCount() const
{
    return mgr_.capacityPages_;
}

std::uint64_t
ViyojitManager::SimBackend::pageSize() const
{
    return mgr_.config_.pageSize;
}

void
ViyojitManager::SimBackend::protectPage(PageNum page)
{
    mgr_.mmu_.protectPage(page);
}

void
ViyojitManager::SimBackend::unprotectPage(PageNum page)
{
    mgr_.mmu_.unprotectPage(page);
}

void
ViyojitManager::SimBackend::scanAndClearDirty(
    bool flush_tlb, FunctionRef<void(PageNum, bool)> visitor)
{
    mgr_.mmu_.scanAndClearDirty(0, mgr_.nextFreePage_, flush_tlb,
                                visitor,
                                mgr_.config_.legacyEpochScan);
}

void
ViyojitManager::SimBackend::persistPageAsync(
    PageNum page, std::function<void()> on_complete)
{
    const Tick done = mgr_.ssd_.writePage(
        mgr_.key(page), mgr_.pageContentHash(page),
        mgr_.config_.pageSize,
        [this, page, cb = std::move(on_complete)]() {
            inFlight_.erase(page);
            if (cb)
                cb();
        },
        mgr_.compressedSizeEstimate(page));
    inFlight_[page] = done;
}

void
ViyojitManager::SimBackend::persistPageBlocking(PageNum page)
{
    const Tick done = mgr_.ssd_.writePageSync(
        mgr_.key(page), mgr_.pageContentHash(page),
        mgr_.config_.pageSize, mgr_.compressedSizeEstimate(page));
    mgr_.ctx_.events().runUntil(done);
}

void
ViyojitManager::SimBackend::waitForPersist(PageNum page)
{
    auto it = inFlight_.find(page);
    if (it == inFlight_.end())
        return;
    const Tick done = it->second;
    mgr_.ctx_.events().runUntil(done);
    VIYOJIT_ASSERT(!inFlight_.contains(page),
                   "persist wait did not complete");
}

void
ViyojitManager::SimBackend::waitForAnyPersist()
{
    if (inFlight_.empty())
        return;
    Tick earliest = maxTick;
    for (const auto &[page, done] : inFlight_)
        earliest = std::min(earliest, done);
    mgr_.ctx_.events().runUntil(earliest);
}

unsigned
ViyojitManager::SimBackend::outstandingIos() const
{
    return static_cast<unsigned>(inFlight_.size());
}

bool
ViyojitManager::SimBackend::canSubmit() const
{
    // Leave two device slots for synchronous work (a blocking
    // eviction in the fault path, or vmunmap flushes) so a copy
    // pipeline as deep as the device queue cannot starve them.
    return mgr_.ssd_.outstanding() + 2 <=
           mgr_.ssd_.config().queueDepth;
}

// ---------------------------------------------------------------------
// ViyojitManager
// ---------------------------------------------------------------------

namespace
{

/** The section-5.4 assist implies write-through dirty bits. */
mmu::MmuCostModel
adjustCosts(const mmu::MmuCostModel &costs, const ViyojitConfig &config)
{
    mmu::MmuCostModel adjusted = costs;
    if (config.hardwareAssist)
        adjusted.writeThroughDirty = true;
    return adjusted;
}

} // namespace

ViyojitManager::ViyojitManager(sim::SimContext &ctx, storage::Ssd &ssd,
                               const ViyojitConfig &config,
                               const mmu::MmuCostModel &mmu_costs,
                               std::uint64_t capacity_pages,
                               std::uint32_t region_id)
    : ctx_(ctx),
      ssd_(ssd),
      config_(config),
      capacityPages_(capacity_pages),
      regionId_(region_id),
      mmu_(ctx, adjustCosts(mmu_costs, config)),
      backend_(*this)
{
    if (capacity_pages == 0)
        fatal("NV capacity must be non-zero");
    if (config.enforceBudget &&
        config.dirtyBudgetPages > capacity_pages) {
        warn("dirty budget exceeds capacity; clamping");
        config_.dirtyBudgetPages = capacity_pages;
    }

    data_.assign(capacity_pages * config_.pageSize, 0);
    versions_.assign(capacity_pages, 0);

    if (config_.enforceBudget) {
        controller_ =
            std::make_unique<DirtyBudgetController>(backend_, config_);
        // Even under the hardware assist, writeback-protected pages
        // fault; the controller waits out the copy and readmits.
        mmu_.setWriteFaultHandler(
            [this](PageNum page) { controller_->onWriteFault(page); });
    } else {
        baselineDirty_ = std::make_unique<DirtyPageTracker>(
            capacity_pages);
    }
}

ViyojitManager::~ViyojitManager()
{
    stop();
}

storage::StorageKey
ViyojitManager::key(PageNum page) const
{
    return storage::StorageKey{regionId_, page};
}

Addr
ViyojitManager::vmmap(std::uint64_t bytes)
{
    if (bytes == 0)
        fatal("vmmap of zero bytes");
    const std::uint64_t pages =
        (bytes + config_.pageSize - 1) / config_.pageSize;
    if (nextFreePage_ + pages > capacityPages_)
        fatal("NV capacity exhausted: need ", pages, " pages, have ",
              capacityPages_ - nextFreePage_);

    const PageNum first = nextFreePage_;
    // Paper fig. 6 step 1: regions come up write-protected so the
    // first write to every page traps.  The baseline and the
    // section-5.4 hardware assist map pages writable: the former
    // pays in battery, the latter tracks via the MMU dirty counter.
    const bool writable =
        !config_.enforceBudget || config_.hardwareAssist;
    for (PageNum p = first; p < first + pages; ++p)
        mmu_.mapPage(p, writable);
    nextFreePage_ += pages;
    return first * config_.pageSize;
}

void
ViyojitManager::vmunmap(Addr base, std::uint64_t bytes)
{
    const PageNum first = base / config_.pageSize;
    const std::uint64_t pages =
        (bytes + config_.pageSize - 1) / config_.pageSize;
    // Make the region durable before dropping it.
    for (PageNum p = first; p < first + pages; ++p) {
        if (config_.enforceBudget) {
            controller_->flushPageBlocking(p);
        } else if (baselineDirty_->isDirty(p)) {
            backend_.persistPageBlocking(p);
            baselineDirty_->markClean(p);
        }
    }
    for (PageNum p = first; p < first + pages; ++p)
        mmu_.unmapPage(p);
}

void
ViyojitManager::read(Addr addr, std::uint64_t len)
{
    mmu_.accessRange(addr, len, /*is_write=*/false, config_.pageSize);
}

void
ViyojitManager::write(Addr addr, std::uint64_t len)
{
    if (len == 0)
        return;
    const PageNum first = addr / config_.pageSize;
    const PageNum last = (addr + len - 1) / config_.pageSize;
    for (PageNum p = first; p <= last; ++p) {
        mmu_.access(p, /*is_write=*/true);
        ++versions_[p];
        if (!config_.enforceBudget) {
            baselineDirty_->markDirty(p);
        } else if (config_.hardwareAssist &&
                   !controller_->tracker().isDirty(p) &&
                   !controller_->isInFlight(p)) {
            // Section 5.4: the MMU counted a new dirty page.  The
            // threshold interrupt costs OS time only when room must
            // be made; mere counting is free.
            if (controller_->tracker().count() >=
                controller_->dirtyBudget()) {
                ctx_.clock().advance(
                    mmu_.costs().assistInterruptCost);
            }
            controller_->onHardwareDirty(p);
        }
    }
}

void
ViyojitManager::memWrite(Addr addr, const void *src, std::uint64_t len)
{
    VIYOJIT_ASSERT(addr + len <= data_.size(), "NV write out of range");
    write(addr, len);
    std::memcpy(data_.data() + addr, src, len);
}

void
ViyojitManager::memRead(Addr addr, void *dst, std::uint64_t len) const
{
    VIYOJIT_ASSERT(addr + len <= data_.size(), "NV read out of range");
    const_cast<ViyojitManager *>(this)->read(addr, len);
    std::memcpy(dst, data_.data() + addr, len);
}

char *
ViyojitManager::rawData(Addr addr)
{
    VIYOJIT_ASSERT(addr < data_.size(), "NV address out of range");
    return data_.data() + addr;
}

const char *
ViyojitManager::rawData(Addr addr) const
{
    VIYOJIT_ASSERT(addr < data_.size(), "NV address out of range");
    return data_.data() + addr;
}

void
ViyojitManager::scheduleNextEpoch()
{
    const std::uint64_t generation = epochGeneration_;
    ctx_.events().scheduleAfter(config_.epochLength,
                                [this, generation]() {
        if (!running_ || generation != epochGeneration_)
            return;
        controller_->onEpochBoundary();
        scheduleNextEpoch();
    });
}

void
ViyojitManager::start()
{
    if (!config_.enforceBudget || running_)
        return;
    running_ = true;
    ++epochGeneration_;
    scheduleNextEpoch();
}

void
ViyojitManager::stop()
{
    running_ = false;
    ++epochGeneration_;
}

void
ViyojitManager::processEvents()
{
    ctx_.events().runUntil(ctx_.now());
}

std::uint64_t
ViyojitManager::dirtyPageCount() const
{
    return config_.enforceBudget ? controller_->tracker().count()
                                 : baselineDirty_->count();
}

std::uint64_t
ViyojitManager::dirtyBytes() const
{
    return dirtyPageCount() * config_.pageSize;
}

FlushReport
ViyojitManager::powerFailureFlush()
{
    stop();
    FlushReport report;
    report.dirtyPagesAtFailure = dirtyPageCount();
    const Tick start = ctx_.now();

    if (config_.enforceBudget) {
        controller_->flushAllDirty();
    } else {
        // Baseline: flush the entire dirty set, pipelining IOs up to
        // the device queue depth.
        std::vector<PageNum> pages = baselineDirty_->dirtyPages();
        std::size_t submitted = 0;
        while (submitted < pages.size() || ssd_.outstanding() > 0) {
            while (submitted < pages.size() && ssd_.canAccept()) {
                const PageNum p = pages[submitted++];
                ssd_.writePage(key(p), pageContentHash(p),
                               config_.pageSize,
                               [this, p]() {
                                   baselineDirty_->markClean(p);
                               },
                               compressedSizeEstimate(p));
            }
            if (!ctx_.events().runOne())
                break;
        }
    }

    report.bytesFlushed =
        report.dirtyPagesAtFailure * config_.pageSize;
    report.flushDuration = ctx_.now() - start;
    return report;
}

bool
ViyojitManager::verifyDurability() const
{
    for (PageNum p = 0; p < nextFreePage_; ++p) {
        if (versions_[p] == 0)
            continue;
        if (ssd_.durableHash(key(p)) != pageContentHash(p))
            return false;
    }
    return true;
}

void
ViyojitManager::setDirtyBudget(std::uint64_t pages)
{
    if (!config_.enforceBudget)
        fatal("baseline mode has no dirty budget");
    config_.dirtyBudgetPages = pages;
    controller_->setDirtyBudget(pages);
}

DirtyBudgetController &
ViyojitManager::controller()
{
    VIYOJIT_ASSERT(controller_, "baseline mode has no controller");
    return *controller_;
}

const DirtyBudgetController &
ViyojitManager::controller() const
{
    VIYOJIT_ASSERT(controller_, "baseline mode has no controller");
    return *controller_;
}

std::uint64_t
ViyojitManager::pageVersion(PageNum page) const
{
    VIYOJIT_ASSERT(page < versions_.size(), "page out of range");
    return versions_[page];
}

std::uint64_t
ViyojitManager::writtenPageCount() const
{
    std::uint64_t count = 0;
    for (PageNum p = 0; p < nextFreePage_; ++p)
        count += versions_[p] > 0;
    return count;
}

std::uint64_t
ViyojitManager::pageContentHash(PageNum page) const
{
    VIYOJIT_ASSERT(page < capacityPages_, "page out of range");
    const char *bytes = data_.data() + page * config_.pageSize;
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (std::uint64_t i = 0; i < config_.pageSize; ++i) {
        hash ^= static_cast<unsigned char>(bytes[i]);
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::uint64_t
ViyojitManager::compressedSizeEstimate(PageNum page) const
{
    VIYOJIT_ASSERT(page < capacityPages_, "page out of range");
    const char *bytes = data_.data() + page * config_.pageSize;
    // Run-length proxy: bytes equal to their predecessor compress
    // away; everything else is copied.  A fixed header covers the
    // run table.  This tracks real fast compressors (lz4-style)
    // closely enough for a traffic model.
    std::uint64_t repeats = 0;
    for (std::uint64_t i = 1; i < config_.pageSize; ++i)
        repeats += bytes[i] == bytes[i - 1];
    const std::uint64_t estimate =
        64 + (config_.pageSize - 1 - repeats) + repeats / 32;
    return std::min<std::uint64_t>(std::max<std::uint64_t>(estimate,
                                                           64),
                                   config_.pageSize);
}

} // namespace viyojit::core
