#include "core/pressure.hh"

#include <cmath>

#include "common/logging.hh"

namespace viyojit::core
{

DirtyPagePressure::DirtyPagePressure(double current_weight)
    : currentWeight_(current_weight)
{
    VIYOJIT_ASSERT(current_weight > 0.0 && current_weight <= 1.0,
                   "EWMA weight out of range");
}

void
DirtyPagePressure::observe(std::uint64_t new_dirty_pages)
{
    predicted_ = currentWeight_ * static_cast<double>(new_dirty_pages) +
                 (1.0 - currentWeight_) * predicted_;
}

std::uint64_t
DirtyPagePressure::threshold(std::uint64_t budget_pages,
                             std::uint64_t headroom_pages) const
{
    const auto pressure =
        static_cast<std::uint64_t>(std::ceil(predicted_));
    const std::uint64_t floor = budget_pages / 2;
    std::uint64_t t = pressure >= budget_pages - floor
                          ? floor
                          : budget_pages - pressure;
    // SLO mode: the reserve is a hard clamp below the prediction,
    // but never deeper than the half-budget retention floor.
    const std::uint64_t headroom = std::min(headroom_pages, floor);
    t = std::min(t, budget_pages - headroom);
    return t;
}

} // namespace viyojit::core
