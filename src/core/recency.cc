#include "core/recency.hh"

#include <algorithm>

#include "common/logging.hh"

namespace viyojit::core
{

EpochRecencyTracker::EpochRecencyTracker(std::uint64_t page_count,
                                         unsigned history_epochs)
{
    VIYOJIT_ASSERT(history_epochs >= 1 && history_epochs <= 64,
                   "history window must be 1..64 epochs");
    history_.assign(page_count, 0);
    lastUpdateSeq_.assign(page_count, 0);
    historyMask_ = history_epochs == 64
                       ? ~0ULL
                       : ~((1ULL << (64 - history_epochs)) - 1);
}

void
EpochRecencyTracker::recordUpdate(PageNum page)
{
    VIYOJIT_ASSERT(page < history_.size(), "page out of range");
    history_[page] |= 1ULL << 63;
    lastUpdateSeq_[page] = ++updateSeq_;
}

std::uint64_t
EpochRecencyTracker::lastUpdateSeq(PageNum page) const
{
    VIYOJIT_ASSERT(page < lastUpdateSeq_.size(), "page out of range");
    return lastUpdateSeq_[page];
}

void
EpochRecencyTracker::advanceEpoch()
{
    for (auto &h : history_)
        h = (h >> 1) & historyMask_;
    ++epochIndex_;
}

std::uint64_t
EpochRecencyTracker::history(PageNum page) const
{
    VIYOJIT_ASSERT(page < history_.size(), "page out of range");
    return history_[page];
}

bool
EpochRecencyTracker::coldInWindow(PageNum page) const
{
    return history(page) == 0;
}

void
EpochRecencyTracker::rebuildVictimQueue(const DirtyPageTracker &tracker)
{
    victimQueue_ = tracker.dirtyPages();
    std::sort(victimQueue_.begin(), victimQueue_.end(),
              [this](PageNum a, PageNum b) {
                  if (history_[a] != history_[b])
                      return history_[a] < history_[b];
                  if (useSeqTieBreak_ &&
                      lastUpdateSeq_[a] != lastUpdateSeq_[b]) {
                      return lastUpdateSeq_[a] < lastUpdateSeq_[b];
                  }
                  return a < b;
              });
    victimCursor_ = 0;
}

PageNum
EpochRecencyTracker::pickVictim(
    const DirtyPageTracker &tracker,
    const std::function<bool(PageNum)> &exclude)
{
    while (victimCursor_ < victimQueue_.size()) {
        const PageNum candidate = victimQueue_[victimCursor_++];
        if (tracker.isDirty(candidate) && !exclude(candidate))
            return candidate;
    }
    // Queue exhausted: fall back to the coldest page in the current
    // dirty set (pages dirtied since the last rebuild).
    PageNum best = invalidPage;
    std::uint64_t best_history = ~0ULL;
    std::uint64_t best_stamp = ~0ULL;
    tracker.forEachDirty([&](PageNum page) {
        if (exclude(page))
            return;
        const std::uint64_t h = history_[page];
        const std::uint64_t s =
            useSeqTieBreak_ ? lastUpdateSeq_[page] : 0;
        if (best == invalidPage || h < best_history ||
            (h == best_history &&
             (s < best_stamp || (s == best_stamp && page < best)))) {
            best = page;
            best_history = h;
            best_stamp = s;
        }
    });
    return best;
}

} // namespace viyojit::core
