#include "core/recency.hh"

#include <algorithm>

#include "common/logging.hh"

namespace viyojit::core
{

EpochRecencyTracker::EpochRecencyTracker(std::uint64_t page_count,
                                         unsigned history_epochs)
{
    VIYOJIT_ASSERT(history_epochs >= 1 && history_epochs <= 64,
                   "history window must be 1..64 epochs");
    history_.assign(page_count, 0);
    lastFolded_.assign(page_count, 0);
    lastUpdateSeq_.assign(page_count, 0);
    enqueuedKey_.assign(page_count, 0);
    windowEpochs_ = history_epochs;
    historyMask_ = history_epochs == 64
                       ? ~0ULL
                       : ~((1ULL << (64 - history_epochs)) - 1);
    ring_.resize(history_epochs);
}

std::uint64_t
EpochRecencyTracker::normalizedHistory(PageNum page) const
{
    const std::uint64_t delta = epochIndex_ - lastFolded_[page];
    if (delta >= 64)
        return 0;
    // Identical to the eager per-epoch `(h >> 1) & mask` chain: a bit
    // surviving the final mask sat above the mask boundary at every
    // intermediate step, so masking once after the combined shift
    // loses nothing.
    return (history_[page] >> delta) & historyMask_;
}

void
EpochRecencyTracker::recordUpdate(PageNum page)
{
    VIYOJIT_ASSERT(page < history_.size(), "page out of range");
    history_[page] = normalizedHistory(page) | (1ULL << 63);
    lastFolded_[page] = epochIndex_;
    lastUpdateSeq_[page] = ++updateSeq_;
    if (!usesBuckets() || enqueuedKey_[page] == epochIndex_ + 1)
        return; // Already has a live entry for this epoch.
    // The current epoch's bucket is always in heap mode: it was
    // cleared by spliceExpiredBucket when its slot came around, and
    // freezing only happens after the epoch passes.  The append is
    // O(1); only a mid-epoch pick pays to heapify.
    Bucket &bucket = ring_[epochIndex_ % windowEpochs_];
    VIYOJIT_ASSERT(bucket.heapMode,
                   "current epoch bucket must accept pushes");
    bucket.entries.push_back(
        Entry{page, history_[page], updateSeq_, false});
    if (bucket.heapified)
        std::push_heap(bucket.entries.begin(), bucket.entries.end(),
                       [this](const Entry &a, const Entry &b) {
                           return entryAfter(a, b);
                       });
    enqueuedKey_[page] = epochIndex_ + 1;
}

std::uint64_t
EpochRecencyTracker::lastUpdateSeq(PageNum page) const
{
    VIYOJIT_ASSERT(page < lastUpdateSeq_.size(), "page out of range");
    return lastUpdateSeq_[page];
}

void
EpochRecencyTracker::advanceEpoch()
{
    ++epochIndex_;
    if (legacyQueue_) {
        // Paper-era cost model: touch every page's history word.
        for (PageNum p = 0; p < history_.size(); ++p) {
            history_[p] = normalizedHistory(p);
            lastFolded_[p] = epochIndex_;
        }
        return;
    }
    spliceExpiredBucket();
}

void
EpochRecencyTracker::spliceExpiredBucket()
{
    Bucket &bucket = ring_[epochIndex_ % windowEpochs_];
    if (epochIndex_ >= windowEpochs_ && !bucket.entries.empty()) {
        // This slot holds pages last updated exactly windowEpochs_
        // ago; their histories just normalized to zero, so they move
        // to the cold list.  Entries within one expired epoch sort by
        // sequence, and successive epochs carry disjoint ascending
        // sequence ranges, so appending keeps cold_ globally sorted.
        const std::uint64_t expired = epochIndex_ - windowEpochs_;
        const std::size_t tail = cold_.size();
        for (std::size_t i = bucket.heapMode ? 0 : bucket.cursor;
             i < bucket.entries.size(); ++i) {
            const Entry &e = bucket.entries[i];
            if (!e.consumed && lastFolded_[e.page] == expired)
                cold_.push_back(
                    ColdEntry{e.page, lastUpdateSeq_[e.page], false});
        }
        // With the locality key on, group each expired epoch's pages
        // by extent before sequence — all cold pages tie on recency
        // (history 0), so this reorders only within that tie.
        std::sort(cold_.begin() + static_cast<std::ptrdiff_t>(tail),
                  cold_.end(), [this](const ColdEntry &a,
                                      const ColdEntry &b) {
                      if (extentShift_ != 0) {
                          const PageNum ea = a.page >> extentShift_;
                          const PageNum eb = b.page >> extentShift_;
                          if (ea != eb)
                              return ea < eb;
                      }
                      return a.seq < b.seq;
                  });
    }
    bucket.clear();
    // Reclaim the consumed cold prefix once it dominates the list.
    if (coldCursor_ > 64 && coldCursor_ > cold_.size() / 2) {
        cold_.erase(cold_.begin(),
                    cold_.begin() +
                        static_cast<std::ptrdiff_t>(coldCursor_));
        coldCursor_ = 0;
    }
}

std::uint64_t
EpochRecencyTracker::history(PageNum page) const
{
    VIYOJIT_ASSERT(page < history_.size(), "page out of range");
    return normalizedHistory(page);
}

bool
EpochRecencyTracker::coldInWindow(PageNum page) const
{
    return history(page) == 0;
}

bool
EpochRecencyTracker::victimLess(PageNum a, PageNum b) const
{
    const std::uint64_t ha = normalizedHistory(a);
    const std::uint64_t hb = normalizedHistory(b);
    if (ha != hb)
        return ha < hb;
    if (extentShift_ != 0 && (a >> extentShift_) != (b >> extentShift_))
        return (a >> extentShift_) < (b >> extentShift_);
    if (useSeqTieBreak_ && lastUpdateSeq_[a] != lastUpdateSeq_[b])
        return lastUpdateSeq_[a] < lastUpdateSeq_[b];
    return a < b;
}

void
EpochRecencyTracker::rebuildVictimQueue(const DirtyPageTracker &tracker)
{
    if (usesBuckets())
        return; // Buckets maintain the order incrementally.
    victimQueue_ = tracker.dirtyPages();
    std::sort(victimQueue_.begin(), victimQueue_.end(),
              [this](PageNum a, PageNum b) {
                  return victimLess(a, b);
              });
    victimCursor_ = 0;
}

PageNum
EpochRecencyTracker::pickFromCold(const DirtyPageTracker &tracker,
                                  FunctionRef<bool(PageNum)> exclude)
{
    for (std::size_t i = coldCursor_; i < cold_.size(); ++i) {
        ColdEntry &e = cold_[i];
        if (e.consumed) {
            if (i == coldCursor_)
                ++coldCursor_;
            continue;
        }
        // A sequence mismatch means the page was updated again after
        // it expired (it lives in a ring bucket now); a clean page
        // re-enters through the fault path with a fresh entry.
        if (lastUpdateSeq_[e.page] != e.seq ||
            !tracker.isDirty(e.page)) {
            e.consumed = true;
            if (i == coldCursor_)
                ++coldCursor_;
            continue;
        }
        if (exclude(e.page))
            continue; // Keep for a later pick.
        e.consumed = true;
        if (i == coldCursor_)
            ++coldCursor_;
        return e.page;
    }
    return invalidPage;
}

PageNum
EpochRecencyTracker::pickFromBucket(Bucket &bucket,
                                    std::uint64_t bucket_epoch,
                                    const DirtyPageTracker &tracker,
                                    FunctionRef<bool(PageNum)> exclude)
{
    if (bucket.heapMode && bucket_epoch == epochIndex_) {
        // The bucket's epoch is still current: every entry was
        // pushed this epoch (the slot was cleared when it came
        // around), its keyHistory is the page's live history, and
        // its keySeq orders first-updates exactly, so the heap pops
        // in victim order at epoch granularity.  Cleaned pages are
        // discarded as they surface; excluded dirty entries are set
        // aside and re-pushed.
        const auto after = [this](const Entry &a, const Entry &b) {
            return entryAfter(a, b);
        };
        if (!bucket.heapified) {
            std::make_heap(bucket.entries.begin(),
                           bucket.entries.end(), after);
            bucket.heapified = true;
        }
        stash_.clear();
        PageNum victim = invalidPage;
        while (!bucket.entries.empty()) {
            std::pop_heap(bucket.entries.begin(),
                          bucket.entries.end(), after);
            const Entry e = bucket.entries.back();
            bucket.entries.pop_back();
            if (!tracker.isDirty(e.page)) {
                // Out of the heap for good: a later re-dirty this
                // epoch must push a fresh entry.
                enqueuedKey_[e.page] = 0;
                continue;
            }
            if (exclude(e.page)) {
                stash_.push_back(e);
                continue;
            }
            enqueuedKey_[e.page] = 0;
            victim = e.page;
            break;
        }
        for (const Entry &e : stash_) {
            bucket.entries.push_back(e);
            std::push_heap(bucket.entries.begin(),
                           bucket.entries.end(), after);
        }
        return victim;
    }
    if (bucket.cursor >= bucket.entries.size())
        return invalidPage;
    if (bucket.heapMode || bucket.sortStamp != epochIndex_) {
        // The bucket's epoch has passed: freeze it.  Drop dead
        // entries first (pages updated again since — lastFolded_ is
        // their last-update epoch — or cleaned), then order the
        // survivors with the full comparator.  The sort must use
        // *current* normalized histories — epoch shifts can collapse
        // a strict order into a sequence-broken tie, so neither the
        // push-time heap keys nor a sort from an earlier epoch is a
        // valid order.
        auto first = bucket.entries.begin() +
                     static_cast<std::ptrdiff_t>(bucket.cursor);
        bucket.entries.erase(
            std::remove_if(first, bucket.entries.end(),
                           [&](const Entry &e) {
                               return e.consumed ||
                                      lastFolded_[e.page] !=
                                          bucket_epoch ||
                                      !tracker.isDirty(e.page);
                           }),
            bucket.entries.end());
        first = bucket.entries.begin() +
                static_cast<std::ptrdiff_t>(bucket.cursor);
        // Like entryAfter, this orders pages of one recency class
        // (the bucket), so the extent key leads when enabled.
        std::sort(first, bucket.entries.end(),
                  [this](const Entry &a, const Entry &b) {
                      if (extentShift_ != 0) {
                          const PageNum ea = a.page >> extentShift_;
                          const PageNum eb = b.page >> extentShift_;
                          if (ea != eb)
                              return ea < eb;
                      }
                      return victimLess(a.page, b.page);
                  });
        bucket.heapMode = false;
        bucket.sortStamp = epochIndex_;
    }
    for (std::size_t i = bucket.cursor;
         i < bucket.entries.size(); ++i) {
        Entry &e = bucket.entries[i];
        if (e.consumed) {
            if (i == bucket.cursor)
                ++bucket.cursor;
            continue;
        }
        if (lastFolded_[e.page] != bucket_epoch ||
            !tracker.isDirty(e.page)) {
            e.consumed = true;
            if (i == bucket.cursor)
                ++bucket.cursor;
            continue;
        }
        if (exclude(e.page))
            continue; // Excluded candidates stay pickable later.
        e.consumed = true;
        if (i == bucket.cursor)
            ++bucket.cursor;
        return e.page;
    }
    return invalidPage;
}

PageNum
EpochRecencyTracker::pickFallback(
    const DirtyPageTracker &tracker,
    FunctionRef<bool(PageNum)> exclude) const
{
    PageNum best = invalidPage;
    tracker.forEachDirty([&](PageNum page) {
        if (exclude(page))
            return;
        if (best == invalidPage || victimLess(page, best))
            best = page;
    });
    return best;
}

PageNum
EpochRecencyTracker::pickVictim(const DirtyPageTracker &tracker,
                                FunctionRef<bool(PageNum)> exclude)
{
    if (usesBuckets()) {
        const PageNum cold = pickFromCold(tracker, exclude);
        if (cold != invalidPage)
            return cold;
        // Oldest window epoch first: a page in an older bucket has a
        // strictly smaller history MSB, hence a smaller history, than
        // any page in a newer one.
        const std::uint64_t oldest =
            epochIndex_ >= windowEpochs_ - 1
                ? epochIndex_ - (windowEpochs_ - 1)
                : 0;
        for (std::uint64_t e = oldest; e <= epochIndex_; ++e) {
            const PageNum victim = pickFromBucket(
                ring_[e % windowEpochs_], e, tracker, exclude);
            if (victim != invalidPage)
                return victim;
        }
        // Residue: every queued candidate was excluded or consumed
        // while still dirty (e.g. an in-flight copy).
        return pickFallback(tracker, exclude);
    }

    while (victimCursor_ < victimQueue_.size()) {
        const PageNum candidate = victimQueue_[victimCursor_++];
        if (tracker.isDirty(candidate) && !exclude(candidate))
            return candidate;
    }
    // Queue exhausted: fall back to the coldest page in the current
    // dirty set (pages dirtied since the last rebuild).
    return pickFallback(tracker, exclude);
}

} // namespace viyojit::core
