#include "trace/csv.hh"

#include <charconv>
#include <limits>
#include <istream>
#include <ostream>
#include <string_view>

namespace viyojit::trace
{

namespace
{

/** Parse one unsigned field, advancing the cursor past the comma. */
bool
takeField(std::string_view &cursor, std::uint64_t &out)
{
    const std::size_t comma = cursor.find(',');
    const std::string_view field = comma == std::string_view::npos
                                       ? cursor
                                       : cursor.substr(0, comma);
    const auto [ptr, ec] = std::from_chars(
        field.data(), field.data() + field.size(), out);
    if (ec != std::errc() || ptr != field.data() + field.size())
        return false;
    cursor = comma == std::string_view::npos
                 ? std::string_view{}
                 : cursor.substr(comma + 1);
    return true;
}

} // namespace

bool
parseCsvLine(const std::string &line, TraceRecord &out)
{
    std::string_view cursor = line;
    // Trim trailing CR from Windows-style dumps.
    if (!cursor.empty() && cursor.back() == '\r')
        cursor.remove_suffix(1);
    if (cursor.empty() || cursor.front() == '#')
        return false;

    std::uint64_t timestamp = 0;
    std::uint64_t volume = 0;
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    if (!takeField(cursor, timestamp) || !takeField(cursor, volume) ||
        !takeField(cursor, offset) || !takeField(cursor, length)) {
        return false;
    }
    if (cursor.size() != 1)
        return false;
    const char op = cursor.front();
    if (op != 'W' && op != 'w' && op != 'R' && op != 'r')
        return false;
    if (length == 0 ||
        length > std::numeric_limits<std::uint32_t>::max()) {
        return false;
    }

    out.timestamp = timestamp;
    out.volumeId = static_cast<std::uint32_t>(volume);
    out.offset = offset;
    out.length = static_cast<std::uint32_t>(length);
    out.isWrite = (op == 'W' || op == 'w');
    return true;
}

CsvReadStats
readCsv(std::istream &in,
        const std::function<void(const TraceRecord &)> &sink)
{
    CsvReadStats stats;
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        if (first) {
            first = false;
            // Tolerate (and expect) a header line.
            if (line.rfind("timestamp", 0) == 0)
                continue;
        }
        TraceRecord record;
        if (parseCsvLine(line, record)) {
            sink(record);
            ++stats.records;
        } else if (!line.empty() && line.front() != '#') {
            ++stats.skippedLines;
        }
    }
    return stats;
}

void
writeCsvHeader(std::ostream &out)
{
    out << "timestamp_ns,volume_id,offset,length,op\n";
}

void
writeCsvRecord(std::ostream &out, const TraceRecord &record)
{
    out << record.timestamp << ',' << record.volumeId << ','
        << record.offset << ',' << record.length << ','
        << (record.isWrite ? 'W' : 'R') << '\n';
}

} // namespace viyojit::trace
