/**
 * @file
 * Synthetic trace generators standing in for the paper's proprietary
 * Microsoft data-center traces (Azure blob storage, Cosmos, Page
 * rank, Search index serving).
 *
 * Substitution note (see DESIGN.md): each application is a table of
 * per-volume parameters chosen so the volume falls into the same
 * qualitative class the paper reports —
 *   1. low write volume, writes to mostly unique pages;
 *   2. low write volume, writes further skewed (~30% of pages take
 *      99% of writes);
 *   3. high write volume (~70%), highly skewed (~10% of pages take
 *      99% of writes);
 *   4. high write volume, writes to mostly unique pages.
 *
 * Time is scaled 60:1 (a "paper hour" is one virtual minute) and
 * volume sizes are tens of MiB instead of hundreds of GiB; figure 2's
 * metric is a ratio, which the scaling preserves.
 */

#ifndef VIYOJIT_TRACE_GENERATORS_HH
#define VIYOJIT_TRACE_GENERATORS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "trace/trace.hh"

namespace viyojit::trace
{

/** Scaled interval lengths corresponding to fig 2's x-axis. */
struct ScaledIntervals
{
    static constexpr Tick oneMinute = 1_s;   ///< paper: one minute
    static constexpr Tick tenMinutes = 10_s; ///< paper: ten minutes
    static constexpr Tick oneHour = 60_s;    ///< paper: one hour
};

/** Behavioural parameters of one synthetic volume. */
struct VolumeParams
{
    std::string name;
    std::uint64_t sizeBytes = 0;

    /** Mean operation rate (ops per virtual second). */
    double opsPerSec = 100.0;

    /** Fraction of operations that are writes. */
    double writeFraction = 0.1;

    /** Mean IO size in bytes (exponential, clamped to [512, 256K]). */
    double meanIoBytes = 8192.0;

    /** Fraction of writes appended to fresh pages (log-structured). */
    double uniqueWriteFraction = 0.1;

    /** Fraction of the volume forming the write hot set. */
    double hotSetFraction = 0.1;

    /** Fraction of non-unique writes that hit the hot set. */
    double hotWriteFraction = 0.9;

    /** Fraction of the volume that reads cover. */
    double readCoverage = 0.8;

    /** Burst modulation: period, duty cycle, and rate multiplier. */
    Tick burstPeriod = 120_s;
    double burstDuty = 0.2;
    double burstMultiplier = 3.0;
};

/** One application: a machine with several volumes and a duration. */
struct AppParams
{
    std::string name;
    Tick duration = 0;
    std::vector<VolumeParams> volumes;
};

/** Streaming generator of one volume's records. */
class VolumeTraceGenerator
{
  public:
    VolumeTraceGenerator(const VolumeParams &params,
                         std::uint32_t volume_id, Tick duration,
                         std::uint64_t seed);

    /**
     * Produce the next record.
     * @return false when the duration is exhausted.
     */
    bool next(TraceRecord &out);

    const VolumeParams &params() const { return params_; }

    VolumeInfo
    info() const
    {
        return VolumeInfo{params_.name, params_.sizeBytes};
    }

  private:
    double currentRate(Tick at) const;
    std::uint32_t drawIoBytes();
    std::uint64_t drawWriteOffset(std::uint32_t bytes);
    std::uint64_t drawReadOffset(std::uint32_t bytes);

    VolumeParams params_;
    std::uint32_t volumeId_;
    Tick duration_;
    Rng rng_;
    Tick nextTime_ = 0;
    std::uint64_t freshCursor_ = 0;
};

/** Parameter tables for the four applications of section 3. */
AppParams azureBlobParams();
AppParams cosmosParams();
AppParams pageRankParams();
AppParams searchIndexParams();

/** All four applications. */
std::vector<AppParams> allApplications();

} // namespace viyojit::trace

#endif // VIYOJIT_TRACE_GENERATORS_HH
