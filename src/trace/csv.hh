/**
 * @file
 * CSV import/export for file-system traces, so the section-3
 * analysis runs on real traces, not just the synthetic generators.
 *
 * Format (header required, one record per line):
 *
 *     timestamp_ns,volume_id,offset,length,op
 *     12345,0,40960,4096,W
 *     12600,0,8192,512,R
 *
 * `op` is `W`/`w` for writes, `R`/`r` for reads.  Lines starting
 * with '#' are comments.
 */

#ifndef VIYOJIT_TRACE_CSV_HH
#define VIYOJIT_TRACE_CSV_HH

#include <functional>
#include <iosfwd>
#include <string>

#include "trace/trace.hh"

namespace viyojit::trace
{

/** Result of a CSV parse. */
struct CsvReadStats
{
    std::uint64_t records = 0;
    std::uint64_t skippedLines = 0;
};

/**
 * Stream records out of CSV text, invoking `sink` per record.
 * Malformed lines are counted and skipped, never fatal — real trace
 * dumps have glitches.
 */
CsvReadStats readCsv(std::istream &in,
                     const std::function<void(const TraceRecord &)> &sink);

/** Parse one CSV line. @return false when malformed. */
bool parseCsvLine(const std::string &line, TraceRecord &out);

/** Write the header line. */
void writeCsvHeader(std::ostream &out);

/** Append one record. */
void writeCsvRecord(std::ostream &out, const TraceRecord &record);

} // namespace viyojit::trace

#endif // VIYOJIT_TRACE_CSV_HH
