/**
 * @file
 * Single-pass trace analyzer implementing the paper's section 3
 * methodology:
 *
 *  - Figure 2: slice the trace into intervals of several lengths;
 *    within each interval, count data written under the adversarial
 *    assumption that every write lands on unique NV-DRAM pages (a
 *    log-structured file system would behave this way); report the
 *    worst interval as a fraction of the volume size.
 *
 *  - Figures 3/4: count writes per *logical* page; find how many of
 *    the hottest pages account for 90/95/99% of all writes; report
 *    that count as a fraction of pages touched (fig 3) and of total
 *    volume pages (fig 4).
 */

#ifndef VIYOJIT_TRACE_ANALYZER_HH
#define VIYOJIT_TRACE_ANALYZER_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "trace/trace.hh"

namespace viyojit::trace
{

/** Worst-interval write volume for one interval length (fig 2). */
struct IntervalWriteMetric
{
    Tick intervalLength = 0;

    /** Bytes written in the heaviest interval (adversarial pages). */
    std::uint64_t worstIntervalBytes = 0;

    /** worstIntervalBytes / volume size. */
    double worstFractionOfVolume = 0.0;
};

/** Write-skew metrics for one volume (figs 3 and 4). */
struct SkewMetric
{
    std::uint64_t totalWrites = 0;
    std::uint64_t totalReads = 0;
    std::uint64_t touchedPages = 0;
    std::uint64_t writtenPages = 0;
    std::uint64_t totalPages = 0;

    /** Bytes written over the whole trace / volume size. */
    double writeVolumeFraction = 0.0;

    /** Hot pages covering 90/95/99% of writes / touched pages. */
    double coverage90OfTouched = 0.0;
    double coverage95OfTouched = 0.0;
    double coverage99OfTouched = 0.0;

    /** Hot pages covering 90/95/99% of writes / total pages. */
    double coverage90OfTotal = 0.0;
    double coverage95OfTotal = 0.0;
    double coverage99OfTotal = 0.0;
};

/** Streaming analyzer for one volume. */
class VolumeAnalyzer
{
  public:
    /**
     * @param volume volume metadata (size determines the page array).
     * @param interval_lengths fig-2 interval lengths to track.
     * @param page_size logical page granularity.
     */
    VolumeAnalyzer(const VolumeInfo &volume,
                   std::vector<Tick> interval_lengths,
                   std::uint64_t page_size = defaultPageSize);

    /** Feed one record (timestamps may arrive in any order). */
    void observe(const TraceRecord &record);

    /** Fig-2 worst-interval metrics, one per interval length. */
    std::vector<IntervalWriteMetric> intervalMetrics() const;

    /** Fig-3/4 skew metrics. */
    SkewMetric skewMetrics() const;

    const VolumeInfo &volume() const { return volume_; }

  private:
    /** Pages needed to cover `fraction` of all writes. */
    std::uint64_t pagesForWriteFraction(
        const std::vector<std::uint32_t> &sorted_counts,
        double fraction) const;

    VolumeInfo volume_;
    std::vector<Tick> intervalLengths_;
    std::uint64_t pageSize_;
    std::uint64_t totalPages_;

    /** Writes per logical page. */
    std::vector<std::uint32_t> writeCounts_;

    /** Read-touch marks per logical page. */
    std::vector<std::uint8_t> readTouched_;

    /** Per interval-length: bytes written per interval index. */
    std::vector<std::vector<std::uint64_t>> intervalBytes_;

    std::uint64_t totalWrites_ = 0;
    std::uint64_t totalReads_ = 0;
    std::uint64_t totalBytesWritten_ = 0;
};

/**
 * Analytic Zipf coverage (fig 5): the smallest fraction of `n` pages
 * whose Zipf(theta) probability mass reaches `percentile`.  Because
 * the mass concentrates logarithmically, this fraction falls as `n`
 * grows — the paper's argument that bigger NV-DRAM makes Viyojit
 * *more* attractive.
 */
double zipfCoverageFraction(std::uint64_t n, double percentile,
                            double theta = 0.99);

/** One row of the fig-5 series. */
struct ZipfCoveragePoint
{
    std::uint64_t pageCount = 0;

    /** Coverage fractions, aligned with the requested percentiles. */
    std::vector<double> fractions;
};

/**
 * Batch form of zipfCoverageFraction: computes coverage for several
 * population sizes and percentiles in a single accumulation pass
 * (the sizes must be given in increasing order).
 */
std::vector<ZipfCoveragePoint>
zipfCoverageSeries(const std::vector<std::uint64_t> &page_counts,
                   const std::vector<double> &percentiles,
                   double theta = 0.99);

} // namespace viyojit::trace

#endif // VIYOJIT_TRACE_ANALYZER_HH
