/**
 * @file
 * File-system trace model (paper section 3).
 *
 * The paper analyzes 24-hour file-system traces of four Microsoft
 * production applications.  Those traces are proprietary; we generate
 * synthetic equivalents whose per-volume parameters are tuned so each
 * volume lands in the qualitative class the paper describes (see
 * generators.hh).  The *analysis* code — interval write volumes,
 * worst-interval selection, percentile-of-writes page counting — is a
 * faithful implementation of the paper's methodology and runs
 * unchanged on real traces of the same record format.
 */

#ifndef VIYOJIT_TRACE_TRACE_HH
#define VIYOJIT_TRACE_TRACE_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace viyojit::trace
{

/** One file-system level access record. */
struct TraceRecord
{
    Tick timestamp = 0;
    std::uint32_t volumeId = 0;
    std::uint64_t offset = 0;
    std::uint32_t length = 0;
    bool isWrite = false;
};

/** Static description of one file-system volume. */
struct VolumeInfo
{
    std::string name;
    std::uint64_t sizeBytes = 0;
};

} // namespace viyojit::trace

#endif // VIYOJIT_TRACE_TRACE_HH
