#include "trace/generators.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace viyojit::trace
{

VolumeTraceGenerator::VolumeTraceGenerator(const VolumeParams &params,
                                           std::uint32_t volume_id,
                                           Tick duration,
                                           std::uint64_t seed)
    : params_(params), volumeId_(volume_id), duration_(duration),
      rng_(seed)
{
    VIYOJIT_ASSERT(params.sizeBytes >= 1_MiB, "volume too small");
    VIYOJIT_ASSERT(params.opsPerSec > 0, "zero op rate");
}

double
VolumeTraceGenerator::currentRate(Tick at) const
{
    if (params_.burstPeriod == 0 || params_.burstMultiplier <= 1.0)
        return params_.opsPerSec;
    const Tick phase = at % params_.burstPeriod;
    const bool bursting =
        static_cast<double>(phase) <
        params_.burstDuty * static_cast<double>(params_.burstPeriod);
    return bursting ? params_.opsPerSec * params_.burstMultiplier
                    : params_.opsPerSec;
}

std::uint32_t
VolumeTraceGenerator::drawIoBytes()
{
    const double raw = rng_.nextExponential(params_.meanIoBytes);
    const double clamped = std::clamp(raw, 512.0, 262144.0);
    // Round to 512-byte sectors like a real block trace.
    return static_cast<std::uint32_t>(clamped / 512.0) * 512;
}

std::uint64_t
VolumeTraceGenerator::drawWriteOffset(std::uint32_t bytes)
{
    const std::uint64_t span = params_.sizeBytes - bytes;
    if (rng_.nextBool(params_.uniqueWriteFraction)) {
        // Log-structured append: fresh pages, wrapping at the end.
        const std::uint64_t off = freshCursor_ % (span + 1);
        freshCursor_ = (freshCursor_ + bytes + defaultPageSize - 1) /
                       defaultPageSize * defaultPageSize;
        return off;
    }
    const auto hot_span = static_cast<std::uint64_t>(
        params_.hotSetFraction * static_cast<double>(span));
    if (hot_span > 0 && rng_.nextBool(params_.hotWriteFraction))
        return rng_.nextBounded(hot_span + 1);
    return rng_.nextBounded(span + 1);
}

std::uint64_t
VolumeTraceGenerator::drawReadOffset(std::uint32_t bytes)
{
    const std::uint64_t span = params_.sizeBytes - bytes;
    const auto read_span = static_cast<std::uint64_t>(
        params_.readCoverage * static_cast<double>(span));
    return rng_.nextBounded(std::max<std::uint64_t>(read_span, 1) + 1);
}

bool
VolumeTraceGenerator::next(TraceRecord &out)
{
    const double rate = currentRate(nextTime_);
    nextTime_ += secondsToTicks(rng_.nextExponential(1.0 / rate));
    if (nextTime_ >= duration_)
        return false;

    out.timestamp = nextTime_;
    out.volumeId = volumeId_;
    out.length = drawIoBytes();
    out.isWrite = rng_.nextBool(params_.writeFraction);
    out.offset = out.isWrite ? drawWriteOffset(out.length)
                             : drawReadOffset(out.length);
    return true;
}

namespace
{

/** 24 paper-hours at the 60:1 time scale. */
constexpr Tick fullDay = 1440_s;

/** 3.5 paper-hours (the Cosmos trace span). */
constexpr Tick cosmosSpan = 210_s;

VolumeParams
volume(std::string name, std::uint64_t mib, double ops, double wf,
       double unique, double hot_set, double hot_write, double read_cov,
       double burst_mult = 3.0, Tick burst_period = 120_s,
       double burst_duty = 0.2)
{
    VolumeParams p;
    p.name = std::move(name);
    p.sizeBytes = mib * 1_MiB;
    p.opsPerSec = ops;
    p.writeFraction = wf;
    p.uniqueWriteFraction = unique;
    p.hotSetFraction = hot_set;
    p.hotWriteFraction = hot_write;
    p.readCoverage = read_cov;
    p.burstMultiplier = burst_mult;
    p.burstPeriod = burst_period;
    p.burstDuty = burst_duty;
    return p;
}

} // namespace

AppParams
azureBlobParams()
{
    // Blob store: read-dominated volumes with modest write volume
    // (fig 2a tops out near 14% per paper-hour) and mostly-unique
    // writes on the cold volumes (class 1), with a couple of skewed
    // metadata volumes (class 2).
    AppParams app;
    app.name = "Azure blob storage";
    app.duration = fullDay;
    app.volumes = {
        volume("A", 48, 60, 0.04, 0.85, 0.10, 0.50, 0.15),
        volume("B", 48, 90, 0.08, 0.70, 0.10, 0.60, 0.25),
        volume("C", 64, 75, 0.10, 0.15, 0.20, 0.95, 0.30),
        volume("D", 64, 80, 0.12, 0.50, 0.15, 0.70, 0.35),
        volume("E", 48, 80, 0.06, 0.80, 0.10, 0.50, 0.20),
        volume("F", 32, 35, 0.15, 0.10, 0.15, 0.95, 0.30),
        volume("G", 48, 70, 0.05, 0.75, 0.10, 0.60, 0.15),
        volume("H", 64, 70, 0.14, 0.40, 0.12, 0.80, 0.40),
    };
    return app;
}

AppParams
cosmosParams()
{
    // Map-reduce substrate: the widest spread (fig 2b reaches ~80%).
    // B and C are the paper's class 2 (few, highly skewed writes);
    // F is class 3 (heavy + skewed); E is class 4 (heavy + unique).
    AppParams app;
    app.name = "Cosmos";
    app.duration = cosmosSpan;
    app.volumes = {
        volume("A", 32, 70, 0.10, 0.60, 0.10, 0.70, 0.30),
        volume("B", 32, 40, 0.08, 0.02, 0.25, 0.99, 0.75),
        volume("C", 32, 40, 0.09, 0.02, 0.22, 0.99, 0.75),
        volume("D", 48, 80, 0.25, 0.40, 0.15, 0.80, 0.40),
        volume("E", 32, 48, 0.60, 0.95, 0.10, 0.50, 0.30, 20.0,
               60_s, 0.05),
        volume("F", 32, 52, 0.55, 0.01, 0.05, 0.99, 0.45, 20.0,
               60_s, 0.05),
        volume("G", 48, 95, 0.15, 0.30, 0.15, 0.85, 0.35),
    };
    return app;
}

AppParams
pageRankParams()
{
    // Iterative rank computation: bursts of writes into working
    // volumes (fig 2c reaches ~25-30%), moderate skew.
    AppParams app;
    app.name = "Page rank";
    app.duration = fullDay;
    app.volumes = {
        volume("A", 48, 70, 0.18, 0.30, 0.12, 0.85, 0.40, 4.0),
        volume("B", 48, 52, 0.22, 0.25, 0.10, 0.90, 0.45, 4.0),
        volume("C", 32, 80, 0.12, 0.50, 0.15, 0.75, 0.30),
        volume("D", 32, 120, 0.08, 0.70, 0.12, 0.60, 0.25),
        volume("E", 48, 45, 0.25, 0.20, 0.08, 0.90, 0.50, 4.0),
        volume("F", 32, 100, 0.06, 0.80, 0.10, 0.50, 0.20),
    };
    return app;
}

AppParams
searchIndexParams()
{
    // Index serving: read heavy, small and skewed write traffic
    // (fig 2d stays under ~16%).
    AppParams app;
    app.name = "Search index serving";
    app.duration = fullDay;
    app.volumes = {
        volume("A", 64, 220, 0.05, 0.20, 0.10, 0.90, 0.60),
        volume("B", 64, 160, 0.07, 0.15, 0.10, 0.92, 0.65),
        volume("C", 48, 180, 0.04, 0.40, 0.12, 0.80, 0.50),
        volume("D", 48, 95, 0.09, 0.10, 0.08, 0.95, 0.55),
        volume("E", 32, 90, 0.06, 0.50, 0.15, 0.75, 0.40),
        volume("F", 64, 80, 0.12, 0.25, 0.10, 0.90, 0.70, 4.0),
    };
    return app;
}

std::vector<AppParams>
allApplications()
{
    return {azureBlobParams(), cosmosParams(), pageRankParams(),
            searchIndexParams()};
}

} // namespace viyojit::trace
