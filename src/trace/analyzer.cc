#include "trace/analyzer.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace viyojit::trace
{

VolumeAnalyzer::VolumeAnalyzer(const VolumeInfo &volume,
                               std::vector<Tick> interval_lengths,
                               std::uint64_t page_size)
    : volume_(volume),
      intervalLengths_(std::move(interval_lengths)),
      pageSize_(page_size)
{
    VIYOJIT_ASSERT(volume.sizeBytes > 0, "empty volume");
    VIYOJIT_ASSERT(page_size > 0, "zero page size");
    totalPages_ = (volume.sizeBytes + page_size - 1) / page_size;
    writeCounts_.assign(totalPages_, 0);
    readTouched_.assign(totalPages_, 0);
    intervalBytes_.resize(intervalLengths_.size());
}

void
VolumeAnalyzer::observe(const TraceRecord &record)
{
    VIYOJIT_ASSERT(record.offset + record.length <= volume_.sizeBytes,
                   "record beyond volume end");
    const PageNum first = record.offset / pageSize_;
    const PageNum last = record.length == 0
                             ? first
                             : (record.offset + record.length - 1) /
                                   pageSize_;

    if (record.isWrite) {
        ++totalWrites_;
        totalBytesWritten_ += record.length;
        for (PageNum p = first; p <= last; ++p) {
            if (writeCounts_[p] != ~0u)
                ++writeCounts_[p];
        }
        for (std::size_t i = 0; i < intervalLengths_.size(); ++i) {
            const auto idx = static_cast<std::size_t>(
                record.timestamp / intervalLengths_[i]);
            if (intervalBytes_[i].size() <= idx)
                intervalBytes_[i].resize(idx + 1, 0);
            intervalBytes_[i][idx] += record.length;
        }
    } else {
        ++totalReads_;
        for (PageNum p = first; p <= last; ++p)
            readTouched_[p] = 1;
    }
}

std::vector<IntervalWriteMetric>
VolumeAnalyzer::intervalMetrics() const
{
    std::vector<IntervalWriteMetric> out;
    for (std::size_t i = 0; i < intervalLengths_.size(); ++i) {
        IntervalWriteMetric m;
        m.intervalLength = intervalLengths_[i];
        for (std::uint64_t bytes : intervalBytes_[i])
            m.worstIntervalBytes =
                std::max(m.worstIntervalBytes, bytes);
        // Adversarial unique-page assumption: every written byte
        // occupies fresh NV-DRAM, but never more than the volume.
        m.worstIntervalBytes =
            std::min(m.worstIntervalBytes, volume_.sizeBytes);
        m.worstFractionOfVolume =
            static_cast<double>(m.worstIntervalBytes) /
            static_cast<double>(volume_.sizeBytes);
        out.push_back(m);
    }
    return out;
}

std::uint64_t
VolumeAnalyzer::pagesForWriteFraction(
    const std::vector<std::uint32_t> &sorted_counts,
    double fraction) const
{
    std::uint64_t total = 0;
    for (std::uint32_t c : sorted_counts)
        total += c;
    if (total == 0)
        return 0;
    const auto target = static_cast<std::uint64_t>(
        std::ceil(fraction * static_cast<double>(total)));
    std::uint64_t covered = 0;
    std::uint64_t pages = 0;
    for (std::uint32_t c : sorted_counts) {
        if (covered >= target)
            break;
        covered += c;
        ++pages;
    }
    return pages;
}

SkewMetric
VolumeAnalyzer::skewMetrics() const
{
    SkewMetric m;
    m.totalWrites = totalWrites_;
    m.totalReads = totalReads_;
    m.totalPages = totalPages_;
    m.writeVolumeFraction =
        std::min(1.0, static_cast<double>(totalBytesWritten_) /
                          static_cast<double>(volume_.sizeBytes));

    std::vector<std::uint32_t> counts;
    counts.reserve(totalPages_);
    for (PageNum p = 0; p < totalPages_; ++p) {
        if (writeCounts_[p] > 0) {
            counts.push_back(writeCounts_[p]);
            ++m.writtenPages;
        }
        if (writeCounts_[p] > 0 || readTouched_[p])
            ++m.touchedPages;
    }
    std::sort(counts.begin(), counts.end(),
              std::greater<std::uint32_t>());

    const std::uint64_t p90 = pagesForWriteFraction(counts, 0.90);
    const std::uint64_t p95 = pagesForWriteFraction(counts, 0.95);
    const std::uint64_t p99 = pagesForWriteFraction(counts, 0.99);

    const auto touched = static_cast<double>(
        std::max<std::uint64_t>(m.touchedPages, 1));
    const auto total = static_cast<double>(totalPages_);
    m.coverage90OfTouched = static_cast<double>(p90) / touched;
    m.coverage95OfTouched = static_cast<double>(p95) / touched;
    m.coverage99OfTouched = static_cast<double>(p99) / touched;
    m.coverage90OfTotal = static_cast<double>(p90) / total;
    m.coverage95OfTotal = static_cast<double>(p95) / total;
    m.coverage99OfTotal = static_cast<double>(p99) / total;
    return m;
}

double
zipfCoverageFraction(std::uint64_t n, double percentile, double theta)
{
    VIYOJIT_ASSERT(n > 0, "empty page population");
    VIYOJIT_ASSERT(percentile > 0.0 && percentile <= 1.0,
                   "percentile out of range");
    // Total generalized-harmonic mass.
    double total = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i)
        total += 1.0 / std::pow(static_cast<double>(i), theta);
    const double target = percentile * total;

    double covered = 0.0;
    for (std::uint64_t k = 1; k <= n; ++k) {
        covered += 1.0 / std::pow(static_cast<double>(k), theta);
        if (covered >= target)
            return static_cast<double>(k) / static_cast<double>(n);
    }
    return 1.0;
}

std::vector<ZipfCoveragePoint>
zipfCoverageSeries(const std::vector<std::uint64_t> &page_counts,
                   const std::vector<double> &percentiles,
                   double theta)
{
    VIYOJIT_ASSERT(!page_counts.empty(), "no population sizes");
    VIYOJIT_ASSERT(std::is_sorted(page_counts.begin(),
                                  page_counts.end()),
                   "population sizes must be increasing");

    const std::uint64_t max_n = page_counts.back();

    // Prefix sums of i^-theta at the requested sizes, plus the full
    // running prefix so coverage can be found by a second bounded
    // scan per size.
    std::vector<double> prefix;
    prefix.reserve(max_n + 1);
    prefix.push_back(0.0);
    double acc = 0.0;
    for (std::uint64_t i = 1; i <= max_n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i), theta);
        prefix.push_back(acc);
    }

    std::vector<ZipfCoveragePoint> out;
    for (std::uint64_t n : page_counts) {
        ZipfCoveragePoint point;
        point.pageCount = n;
        const double total = prefix[n];
        for (double p : percentiles) {
            const double target = p * total;
            // Binary search the prefix for the first k covering it.
            const auto it = std::lower_bound(
                prefix.begin() + 1, prefix.begin() + 1 + n, target);
            const auto k = static_cast<std::uint64_t>(
                it - prefix.begin());
            point.fractions.push_back(static_cast<double>(k) /
                                      static_cast<double>(n));
        }
        out.push_back(std::move(point));
    }
    return out;
}

} // namespace viyojit::trace
