/**
 * @file
 * Persistent heap allocator (the role Intel PMEM's pobj heap plays in
 * the paper's modified Redis).
 *
 * Layout properties:
 *  - all metadata lives inside the NV region;
 *  - all links are region-relative offsets, never pointers, so the
 *    heap re-attaches after a crash/reboot at any base address;
 *  - segregated free lists over power-of-two size classes;
 *  - allocations are carved from per-class page-aligned *runs*
 *    (slabs), like jemalloc bins: small objects of one class pack
 *    densely into shared pages instead of interleaving with large
 *    ones.  The page-level locality of small metadata objects is
 *    load-bearing for the Viyojit evaluation (dense metadata pages
 *    stay hot and dirty; value pages churn).
 *
 * Offsets handed out by alloc() point at the payload; offset 0 is
 * reserved as the null offset.
 */

#ifndef VIYOJIT_PHEAP_PHEAP_HH
#define VIYOJIT_PHEAP_PHEAP_HH

#include <cstdint>
#include <cstring>

#include "pheap/nv_space.hh"

namespace viyojit::pheap
{

/** Region-relative offset; 0 is null. */
using NvOffset = std::uint64_t;

inline constexpr NvOffset nullOffset = 0;

/** Allocator statistics. */
struct HeapStats
{
    std::uint64_t liveAllocations = 0;
    std::uint64_t bytesAllocated = 0;
    std::uint64_t bytesInUse = 0;
    std::uint64_t bumpUsed = 0;
    std::uint64_t freeListHits = 0;
};

/** Persistent heap over an NvSpace. */
class PersistentHeap
{
  public:
    static constexpr std::uint32_t magicValue = 0x56594f4a; // "VYOJ"
    static constexpr unsigned minClassShift = 4;  // 16 B
    static constexpr unsigned maxClassShift = 21; // 2 MiB
    static constexpr unsigned classCount =
        maxClassShift - minClassShift + 1;

    /** Create a fresh heap, formatting the region. */
    static PersistentHeap create(NvSpace &space);

    /** Re-attach to a previously formatted region (recovery path). */
    static PersistentHeap attach(NvSpace &space);

    /**
     * Allocate `bytes` of payload.
     * @return payload offset, or nullOffset when out of space.
     */
    NvOffset alloc(std::uint64_t bytes);

    /** Release a payload offset returned by alloc(). */
    void free(NvOffset payload);

    /** Usable payload size of an allocation. */
    std::uint64_t allocSize(NvOffset payload) const;

    /** Store the application's root object offset (KV store table). */
    void setRoot(NvOffset root);

    /** Application root offset (nullOffset when unset). */
    NvOffset root() const;

    /** Typed write into the region (accounted). */
    template <typename T>
    void
    store(NvOffset off, const T &value)
    {
        space_.noteWrite(off, sizeof(T));
        std::memcpy(space_.base() + off, &value, sizeof(T));
    }

    /** Typed read from the region (accounted). */
    template <typename T>
    T
    load(NvOffset off) const
    {
        space_.noteRead(off, sizeof(T));
        T value;
        std::memcpy(&value, space_.base() + off, sizeof(T));
        return value;
    }

    /** Bulk write (accounted). */
    void writeBytes(NvOffset off, const void *src, std::uint64_t len);

    /** Bulk read (accounted). */
    void readBytes(NvOffset off, void *dst, std::uint64_t len) const;

    HeapStats stats() const;

    std::uint64_t capacity() const { return space_.size(); }

    NvSpace &space() { return space_; }

  private:
    /** Bytes per freshly carved run (slab) of small classes. */
    static constexpr std::uint64_t runBytes = 16 * 1024;

    /** Runs start on this alignment so classes segregate by page. */
    static constexpr std::uint64_t runAlignment = 4096;

    /** On-NV header at offset 0. */
    struct Header
    {
        std::uint32_t magic;
        std::uint32_t version;
        std::uint64_t regionSize;
        std::uint64_t bumpOffset;
        std::uint64_t rootOffset;
        std::uint64_t liveAllocations;
        std::uint64_t bytesInUse;
        std::uint64_t freeHeads[classCount];
        std::uint64_t runCursor[classCount];
        std::uint64_t runRemaining[classCount];
    };

    /** 8-byte block header preceding each payload. */
    struct BlockHeader
    {
        std::uint32_t classIndex;
        std::uint32_t inUse;
    };

    explicit PersistentHeap(NvSpace &space);

    static unsigned classForBytes(std::uint64_t bytes);
    static std::uint64_t classSize(unsigned index);

    Header loadHeader() const;
    void storeHeader(const Header &h);

    NvSpace &space_;
    std::uint64_t freeListHits_ = 0;
};

} // namespace viyojit::pheap

#endif // VIYOJIT_PHEAP_PHEAP_HH
