#include "pheap/pheap.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace viyojit::pheap
{

namespace
{

/** Align the first block past the header to 16 bytes. */
constexpr std::uint64_t
firstBlockOffset(std::uint64_t header_size)
{
    return (header_size + 15) & ~std::uint64_t{15};
}

} // namespace

PersistentHeap::PersistentHeap(NvSpace &space)
    : space_(space)
{
}

unsigned
PersistentHeap::classForBytes(std::uint64_t bytes)
{
    if (bytes == 0)
        bytes = 1;
    const std::uint64_t min_size = 1ULL << minClassShift;
    if (bytes <= min_size)
        return 0;
    const unsigned shift =
        64 - static_cast<unsigned>(std::countl_zero(bytes - 1));
    VIYOJIT_ASSERT(shift <= maxClassShift,
                   "allocation too large: ", bytes, " bytes");
    return shift - minClassShift;
}

std::uint64_t
PersistentHeap::classSize(unsigned index)
{
    return 1ULL << (index + minClassShift);
}

PersistentHeap::Header
PersistentHeap::loadHeader() const
{
    return load<Header>(0);
}

void
PersistentHeap::storeHeader(const Header &h)
{
    store<Header>(0, h);
}

PersistentHeap
PersistentHeap::create(NvSpace &space)
{
    if (space.size() < sizeof(Header) + 64)
        fatal("NV region too small for a heap");
    PersistentHeap heap(space);
    Header h{};
    h.magic = magicValue;
    h.version = 1;
    h.regionSize = space.size();
    h.bumpOffset = firstBlockOffset(sizeof(Header));
    h.rootOffset = nullOffset;
    heap.storeHeader(h);
    return heap;
}

PersistentHeap
PersistentHeap::attach(NvSpace &space)
{
    PersistentHeap heap(space);
    const Header h = heap.loadHeader();
    if (h.magic != magicValue)
        fatal("attach to an unformatted NV region");
    if (h.regionSize != space.size())
        fatal("heap was formatted with a different region size");
    return heap;
}

NvOffset
PersistentHeap::alloc(std::uint64_t bytes)
{
    const unsigned cls = classForBytes(bytes);
    Header h = loadHeader();
    const std::uint64_t block_size =
        sizeof(BlockHeader) + classSize(cls);

    NvOffset block = h.freeHeads[cls];
    if (block != nullOffset) {
        // Pop the class free list; the next link lives in the
        // payload of the free block.
        const auto next = load<NvOffset>(block + sizeof(BlockHeader));
        h.freeHeads[cls] = next;
        ++freeListHits_;
    } else {
        if (h.runRemaining[cls] < block_size) {
            // Carve a fresh page-aligned run (slab) for this class.
            const std::uint64_t run_size =
                std::max<std::uint64_t>(runBytes, block_size);
            const std::uint64_t run_start =
                (h.bumpOffset + runAlignment - 1) / runAlignment *
                runAlignment;
            if (run_start + run_size > h.regionSize) {
                // Last resort: squeeze one block from the unaligned
                // remainder before declaring the region full.
                if (h.bumpOffset + block_size > h.regionSize)
                    return nullOffset;
                h.runCursor[cls] = h.bumpOffset;
                h.runRemaining[cls] = h.regionSize - h.bumpOffset;
                h.bumpOffset = h.regionSize;
            } else {
                h.runCursor[cls] = run_start;
                h.runRemaining[cls] = run_size;
                h.bumpOffset = run_start + run_size;
            }
        }
        block = h.runCursor[cls];
        h.runCursor[cls] += block_size;
        h.runRemaining[cls] -= block_size;
    }

    store<BlockHeader>(block, BlockHeader{cls, 1});
    ++h.liveAllocations;
    h.bytesInUse += classSize(cls);
    storeHeader(h);
    return block + sizeof(BlockHeader);
}

void
PersistentHeap::free(NvOffset payload)
{
    VIYOJIT_ASSERT(payload != nullOffset, "freeing null offset");
    const NvOffset block = payload - sizeof(BlockHeader);
    BlockHeader bh = load<BlockHeader>(block);
    VIYOJIT_ASSERT(bh.inUse == 1, "double free or corrupt block");
    VIYOJIT_ASSERT(bh.classIndex < classCount, "corrupt class index");

    Header h = loadHeader();
    bh.inUse = 0;
    store<BlockHeader>(block, bh);
    store<NvOffset>(payload, h.freeHeads[bh.classIndex]);
    h.freeHeads[bh.classIndex] = block;
    VIYOJIT_ASSERT(h.liveAllocations > 0, "free with no live allocs");
    --h.liveAllocations;
    h.bytesInUse -= classSize(bh.classIndex);
    storeHeader(h);
}

std::uint64_t
PersistentHeap::allocSize(NvOffset payload) const
{
    const NvOffset block = payload - sizeof(BlockHeader);
    const auto bh = load<BlockHeader>(block);
    VIYOJIT_ASSERT(bh.classIndex < classCount, "corrupt class index");
    return classSize(bh.classIndex);
}

void
PersistentHeap::setRoot(NvOffset root)
{
    Header h = loadHeader();
    h.rootOffset = root;
    storeHeader(h);
}

NvOffset
PersistentHeap::root() const
{
    return loadHeader().rootOffset;
}

void
PersistentHeap::writeBytes(NvOffset off, const void *src,
                           std::uint64_t len)
{
    VIYOJIT_ASSERT(off + len <= space_.size(), "heap write out of range");
    space_.noteWrite(off, len);
    std::memcpy(space_.base() + off, src, len);
}

void
PersistentHeap::readBytes(NvOffset off, void *dst,
                          std::uint64_t len) const
{
    VIYOJIT_ASSERT(off + len <= space_.size(), "heap read out of range");
    space_.noteRead(off, len);
    std::memcpy(dst, space_.base() + off, len);
}

HeapStats
PersistentHeap::stats() const
{
    const Header h = loadHeader();
    HeapStats s;
    s.liveAllocations = h.liveAllocations;
    s.bytesInUse = h.bytesInUse;
    s.bumpUsed = h.bumpOffset;
    s.freeListHits = freeListHits_;
    s.bytesAllocated = h.bytesInUse;
    return s;
}

} // namespace viyojit::pheap
