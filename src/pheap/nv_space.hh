/**
 * @file
 * Abstraction over a byte-addressable NV region.
 *
 * The persistent heap and the KV store run unchanged over either
 * substrate: the simulated manager (writes are charged to the MMU
 * model and tracked for durability) or the mprotect runtime (the
 * hardware faults do the tracking, so the notes are no-ops).
 */

#ifndef VIYOJIT_PHEAP_NV_SPACE_HH
#define VIYOJIT_PHEAP_NV_SPACE_HH

#include <cstdint>

#include "common/types.hh"
#include "core/manager.hh"

namespace viyojit::pheap
{

/** Byte-addressable NV region with access accounting hooks. */
class NvSpace
{
  public:
    virtual ~NvSpace() = default;

    /** Base of the region in host memory. */
    virtual char *base() = 0;
    virtual const char *base() const = 0;

    /** Region size in bytes. */
    virtual std::uint64_t size() const = 0;

    /** Account a write of [off, off+len); called before the store. */
    virtual void noteWrite(std::uint64_t off, std::uint64_t len) = 0;

    /** Account a read of [off, off+len); called before the load. */
    virtual void noteRead(std::uint64_t off, std::uint64_t len) = 0;
};

/** NvSpace over a vmmap'd region of a simulated ViyojitManager. */
class SimNvSpace : public NvSpace
{
  public:
    /**
     * @param manager the simulated NV-DRAM manager.
     * @param region_base address returned by vmmap.
     * @param bytes region length.
     */
    SimNvSpace(core::ViyojitManager &manager, Addr region_base,
               std::uint64_t bytes)
        : manager_(manager), base_(region_base), size_(bytes)
    {}

    char *base() override { return manager_.rawData(base_); }

    const char *
    base() const override
    {
        return manager_.rawData(base_);
    }

    std::uint64_t size() const override { return size_; }

    void
    noteWrite(std::uint64_t off, std::uint64_t len) override
    {
        manager_.write(base_ + off, len);
    }

    void
    noteRead(std::uint64_t off, std::uint64_t len) override
    {
        manager_.read(base_ + off, len);
    }

  private:
    core::ViyojitManager &manager_;
    Addr base_;
    std::uint64_t size_;
};

/** NvSpace over plain host memory (runtime library / tests). */
class PlainNvSpace : public NvSpace
{
  public:
    PlainNvSpace(char *base, std::uint64_t bytes)
        : base_(base), size_(bytes)
    {}

    char *base() override { return base_; }
    const char *base() const override { return base_; }
    std::uint64_t size() const override { return size_; }
    void noteWrite(std::uint64_t, std::uint64_t) override {}
    void noteRead(std::uint64_t, std::uint64_t) override {}

  private:
    char *base_;
    std::uint64_t size_;
};

} // namespace viyojit::pheap

#endif // VIYOJIT_PHEAP_NV_SPACE_HH
