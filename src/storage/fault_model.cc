#include "storage/fault_model.hh"

#include "common/logging.hh"

namespace viyojit::storage
{

FaultModel::FaultModel(const FaultModelConfig &config)
    : config_(config), rng_(config.seed)
{
    VIYOJIT_ASSERT(config.writeErrorProb >= 0.0 &&
                       config.writeErrorProb < 1.0,
                   "write error probability out of [0, 1)");
    VIYOJIT_ASSERT(config.readErrorProb >= 0.0 &&
                       config.readErrorProb < 1.0,
                   "read error probability out of [0, 1)");
    VIYOJIT_ASSERT(config.hardErrorFraction >= 0.0 &&
                       config.hardErrorFraction <= 1.0,
                   "hard error fraction out of [0, 1]");
    VIYOJIT_ASSERT(config.tailLatencyProb >= 0.0 &&
                       config.tailLatencyProb < 1.0,
                   "tail latency probability out of [0, 1)");
    VIYOJIT_ASSERT(config.tailLatencyMultiplier >= 1.0,
                   "tail latency multiplier below 1");
    VIYOJIT_ASSERT(config.silentBitFlipProb >= 0.0 &&
                       config.silentBitFlipProb < 1.0,
                   "silent bit-flip probability out of [0, 1)");
    VIYOJIT_ASSERT(config.droppedWriteProb >= 0.0 &&
                       config.droppedWriteProb < 1.0,
                   "dropped-write probability out of [0, 1)");
    VIYOJIT_ASSERT(config.misdirectedWriteProb >= 0.0 &&
                       config.misdirectedWriteProb < 1.0,
                   "misdirected-write probability out of [0, 1)");
}

FaultModel::Decision
FaultModel::onWriteSubmit(std::uint32_t region, PageNum page)
{
    Decision decision;

    // A page whose last write hard-failed is remapped by the device
    // before this attempt proceeds: pay the remap latency once and
    // the page is healthy again.
    auto bad = badPages_.find(pack(region, page));
    if (bad != badPages_.end()) {
        badPages_.erase(bad);
        ++remaps_;
        decision.extraLatency += config_.remapLatency;
    }

    if (rng_.nextBool(config_.tailLatencyProb)) {
        ++tailSpikes_;
        decision.latencyMultiplier = config_.tailLatencyMultiplier;
    }

    if (rng_.nextBool(config_.writeErrorProb)) {
        ++writeErrors_;
        if (rng_.nextBool(config_.hardErrorFraction)) {
            ++hardErrors_;
            badPages_.insert(pack(region, page));
            decision.status = IoStatus::hardError;
        } else {
            decision.status = IoStatus::transientError;
        }
    }

    // Silent faults ride only on attempts the device acknowledges as
    // ok: the status channel stays clean while the medium lies.  The
    // enablement guard matters beyond speed: every nextBool consumes a
    // draw, so drawing for zero-probability faults would shift the
    // seeded stream and change the replay of every pre-existing seed.
    if (silentFaultsEnabled() && decision.status == IoStatus::ok) {
        if (rng_.nextBool(config_.silentBitFlipProb)) {
            ++bitFlips_;
            decision.silentFault = SilentFaultKind::bitFlip;
            decision.silentFaultRaw = rng_.next();
        } else if (rng_.nextBool(config_.droppedWriteProb)) {
            ++droppedWrites_;
            decision.silentFault = SilentFaultKind::droppedWrite;
        } else if (rng_.nextBool(config_.misdirectedWriteProb)) {
            ++misdirectedWrites_;
            decision.silentFault = SilentFaultKind::misdirectedWrite;
            decision.silentFaultRaw = rng_.next();
        }
    }
    return decision;
}

FaultModel::Decision
FaultModel::onReadSubmit(std::uint32_t region, PageNum page)
{
    (void)region;
    (void)page;
    Decision decision;
    if (rng_.nextBool(config_.tailLatencyProb)) {
        ++tailSpikes_;
        decision.latencyMultiplier = config_.tailLatencyMultiplier;
    }
    // Read errors are transient: the device recovers the sector from
    // its internal redundancy on retry, so durability is never lost
    // to a read-side fault.
    if (rng_.nextBool(config_.readErrorProb)) {
        ++readErrors_;
        decision.status = IoStatus::transientError;
    }
    return decision;
}

void
FaultModel::setBandwidthDegradation(double factor)
{
    VIYOJIT_ASSERT(factor > 0.0 && factor <= 1.0,
                   "bandwidth factor out of (0, 1]");
    bandwidthFactor_ = factor;
}

double
FaultModel::expectedWriteAttempts() const
{
    // A durable write must both be acknowledged AND land intact:
    // under verified durability a silently corrupted acknowledgement
    // fails the read-back verify and is retried just like an error,
    // so the silent-fault classes amplify the expected attempt count
    // the same way the status-visible error probability does.  The
    // safe-mode governor divides the flush-bandwidth model by this,
    // which is what keeps the emergency flush inside the battery
    // window when the device is lying.
    const double intact = (1.0 - config_.silentBitFlipProb) *
                          (1.0 - config_.droppedWriteProb) *
                          (1.0 - config_.misdirectedWriteProb);
    return 1.0 / ((1.0 - config_.writeErrorProb) * intact);
}

bool
FaultModel::isBad(std::uint32_t region, PageNum page) const
{
    return badPages_.contains(pack(region, page));
}

} // namespace viyojit::storage
