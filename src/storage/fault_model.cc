#include "storage/fault_model.hh"

#include "common/logging.hh"

namespace viyojit::storage
{

FaultModel::FaultModel(const FaultModelConfig &config)
    : config_(config), rng_(config.seed)
{
    VIYOJIT_ASSERT(config.writeErrorProb >= 0.0 &&
                       config.writeErrorProb < 1.0,
                   "write error probability out of [0, 1)");
    VIYOJIT_ASSERT(config.readErrorProb >= 0.0 &&
                       config.readErrorProb < 1.0,
                   "read error probability out of [0, 1)");
    VIYOJIT_ASSERT(config.hardErrorFraction >= 0.0 &&
                       config.hardErrorFraction <= 1.0,
                   "hard error fraction out of [0, 1]");
    VIYOJIT_ASSERT(config.tailLatencyProb >= 0.0 &&
                       config.tailLatencyProb < 1.0,
                   "tail latency probability out of [0, 1)");
    VIYOJIT_ASSERT(config.tailLatencyMultiplier >= 1.0,
                   "tail latency multiplier below 1");
}

FaultModel::Decision
FaultModel::onWriteSubmit(std::uint32_t region, PageNum page)
{
    Decision decision;

    // A page whose last write hard-failed is remapped by the device
    // before this attempt proceeds: pay the remap latency once and
    // the page is healthy again.
    auto bad = badPages_.find(pack(region, page));
    if (bad != badPages_.end()) {
        badPages_.erase(bad);
        ++remaps_;
        decision.extraLatency += config_.remapLatency;
    }

    if (rng_.nextBool(config_.tailLatencyProb)) {
        ++tailSpikes_;
        decision.latencyMultiplier = config_.tailLatencyMultiplier;
    }

    if (rng_.nextBool(config_.writeErrorProb)) {
        ++writeErrors_;
        if (rng_.nextBool(config_.hardErrorFraction)) {
            ++hardErrors_;
            badPages_.insert(pack(region, page));
            decision.status = IoStatus::hardError;
        } else {
            decision.status = IoStatus::transientError;
        }
    }
    return decision;
}

FaultModel::Decision
FaultModel::onReadSubmit(std::uint32_t region, PageNum page)
{
    (void)region;
    (void)page;
    Decision decision;
    if (rng_.nextBool(config_.tailLatencyProb)) {
        ++tailSpikes_;
        decision.latencyMultiplier = config_.tailLatencyMultiplier;
    }
    // Read errors are transient: the device recovers the sector from
    // its internal redundancy on retry, so durability is never lost
    // to a read-side fault.
    if (rng_.nextBool(config_.readErrorProb)) {
        ++readErrors_;
        decision.status = IoStatus::transientError;
    }
    return decision;
}

void
FaultModel::setBandwidthDegradation(double factor)
{
    VIYOJIT_ASSERT(factor > 0.0 && factor <= 1.0,
                   "bandwidth factor out of (0, 1]");
    bandwidthFactor_ = factor;
}

double
FaultModel::expectedWriteAttempts() const
{
    return 1.0 / (1.0 - config_.writeErrorProb);
}

bool
FaultModel::isBad(std::uint32_t region, PageNum page) const
{
    return badPages_.contains(pack(region, page));
}

} // namespace viyojit::storage
