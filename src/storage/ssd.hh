/**
 * @file
 * SSD device model.
 *
 * Timing: a single bandwidth channel (writes serialize at
 * `writeBandwidth` bytes/sec) plus a fixed per-IO latency and an IOPS
 * cap.  Callers bound the number of outstanding IOs (the paper uses a
 * 16-deep queue); the device also refuses submissions beyond its own
 * queue depth.
 *
 * Durability: the device keeps a page-granular content-hash image per
 * region, which the failure injector compares against live memory
 * after a simulated power-loss flush.
 *
 * Wear: bytes and page-writes are accounted so Fig 9 (average write
 * rate) and the SSD-endurance discussion can be reproduced.
 */

#ifndef VIYOJIT_STORAGE_SSD_HH
#define VIYOJIT_STORAGE_SSD_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "common/types.hh"
#include "sim/context.hh"
#include "storage/fault_model.hh"

namespace viyojit::storage
{

/** Tunable SSD characteristics. */
struct SsdConfig
{
    /** Sustained write bandwidth in bytes per second. */
    double writeBandwidth = 2.0e9;

    /** Sustained read bandwidth in bytes per second. */
    double readBandwidth = 3.0e9;

    /** Fixed per-IO latency (submission to completion floor). */
    Tick perIoLatency = 80_us;

    /** Max IOs per second (625 K-IOPS in the paper's testbed). */
    double maxIops = 625000.0;

    /** Device-side queue depth. */
    unsigned queueDepth = 64;

    /**
     * Deduplicate page writes whose content hash already matches the
     * durable image: the IO is acknowledged without consuming
     * bandwidth (related-work extension the paper points to for
     * reducing proactive-copy traffic).
     */
    bool enableDedup = false;

    /**
     * Transparent compression: transfer the caller-supplied
     * compressed size instead of the raw page (the other section-7
     * traffic reducer).  Wear accounting records compressed bytes.
     */
    bool enableCompression = false;
};

/** Identifies a page within a region on the device. */
struct StorageKey
{
    std::uint32_t regionId;
    PageNum page;

    bool operator==(const StorageKey &) const = default;
};

struct StorageKeyHash
{
    std::size_t
    operator()(const StorageKey &k) const
    {
        return std::hash<std::uint64_t>{}(
            (static_cast<std::uint64_t>(k.regionId) << 48) ^ k.page);
    }
};

/** Simulated SSD with timing, durability image, and wear stats. */
class Ssd
{
  public:
    using Callback = std::function<void()>;

    /** Completion callback carrying the attempt's status. */
    using IoCallback = std::function<void(IoStatus)>;

    /**
     * Per-page completion callback for a coalesced run write: fired
     * once per page (by index within the run) at the run's service
     * time.
     */
    using RunCallback = std::function<void(unsigned, IoStatus)>;

    Ssd(sim::SimContext &ctx, const SsdConfig &config);

    /**
     * Attach a fault model; IO attempts now consult it at submit
     * time.  Pass nullptr to restore the ideal device.  Callers that
     * install a model must use the status-aware submitWrite/submitRead
     * API on every path that can race a fault (the status-free
     * wrappers panic on an injected error).
     */
    void setFaultModel(std::unique_ptr<FaultModel> model);

    /** Installed fault model, or nullptr for the ideal device. */
    FaultModel *faultModel() { return faultModel_.get(); }
    const FaultModel *faultModel() const { return faultModel_.get(); }

    /**
     * Submit one page-write attempt.  The completion callback fires
     * at the attempt's service time with its status; the content hash
     * becomes durable only on IoStatus::ok.  Failed attempts still
     * occupy the bandwidth channel and a queue slot for their service
     * time (the device worked, the data did not land).
     */
    Tick submitWrite(StorageKey key, std::uint64_t content_hash,
                     std::uint64_t bytes, IoCallback on_complete,
                     std::uint64_t compressed_bytes = 0);

    /**
     * Submit one coalesced write of `count` device-adjacent pages
     * starting at `first` as a single IO: one queue slot, one IOPS
     * admission, one per-IO latency — the bandwidth channel still
     * carries every byte.  Each page gets an independent fault draw
     * (the device wrote `count` pages), so a bad page fails its slice
     * of the run without failing the rest; `on_page_complete` fires
     * per page with that page's status.  Hashes become durable only
     * at the run's completion event — a power cut before then leaves
     * the whole run non-durable, never a torn prefix.
     *
     * With `enableCompression`, `compressed_bytes` (nullable; one
     * entry per page, 0 = incompressible) sets each page's transfer
     * size exactly as submitWrite does, so single-page and run
     * submissions account identical SSD bytes.  Dedup stays
     * single-page-only: a run is one device IO and is transferred
     * whole.
     */
    Tick submitWriteRun(StorageKey first, unsigned count,
                        const std::uint64_t *content_hashes,
                        std::uint64_t bytes_per_page,
                        RunCallback on_page_complete,
                        const std::uint64_t *compressed_bytes = nullptr);

    /** Submit one page-read attempt (status-aware). */
    Tick submitRead(StorageKey key, std::uint64_t bytes,
                    IoCallback on_complete);

    /**
     * Sustained write bandwidth after wear degradation — what an
     * emergency flush can actually count on.  Equals the configured
     * bandwidth while no fault model is installed.
     */
    double effectiveWriteBandwidth() const;

    /**
     * Submit an asynchronous page write.  The content hash becomes
     * durable at completion time, when `on_complete` fires.
     *
     * @param key page address on the device.
     * @param content_hash hash of the page content being persisted.
     * @param bytes raw page size.
     * @param on_complete fired at durability.
     * @param compressed_bytes transfer size when compression is on
     *        (0 = incompressible, use `bytes`).
     * @return the virtual completion time.
     */
    Tick writePage(StorageKey key, std::uint64_t content_hash,
                   std::uint64_t bytes, Callback on_complete,
                   std::uint64_t compressed_bytes = 0);

    /**
     * Synchronous page write: schedules the write and returns the
     * completion time; the caller is responsible for advancing /
     * draining the event queue up to that time (the fault path blocks
     * this way when the dirty budget is exhausted).
     */
    Tick writePageSync(StorageKey key, std::uint64_t content_hash,
                       std::uint64_t bytes,
                       std::uint64_t compressed_bytes = 0);

    /** Writes elided because the durable content already matched. */
    std::uint64_t dedupHits() const { return dedupHits_; }

    /** Raw (pre-compression) bytes accepted for writing. */
    std::uint64_t logicalBytesWritten() const
    {
        return logicalBytesWritten_;
    }

    /** Model a page-sized read; returns completion time. */
    Tick readPage(StorageKey key, std::uint64_t bytes,
                  Callback on_complete);

    /** Durable content hash for a page; 0 when never written. */
    std::uint64_t durableHash(StorageKey key) const;

    /** True if the page has ever been persisted. */
    bool hasPage(StorageKey key) const;

    /**
     * Ground-truth silent-corruption ledger.  A silent fault on an
     * acknowledged write records the page here; a later good write to
     * the same page clears it.  The torture harness cross-checks this
     * against what the checksum path *detected* — the ledger is
     * oracle state, never visible to the system under test.
     */
    SilentFaultKind corruptionKind(StorageKey key) const;
    std::uint64_t corruptedPageCount() const
    {
        return corrupted_.size();
    }
    void forEachCorruption(
        const std::function<void(StorageKey, SilentFaultKind)> &fn)
        const;

    /** Number of IOs submitted but not yet completed. */
    unsigned outstanding() const { return outstanding_; }

    /** Run (multi-page) IOs among the outstanding ones. */
    unsigned outstandingRuns() const { return outstandingRuns_; }

    /** True if the device can accept another IO right now. */
    bool canAccept() const { return outstanding_ < config_.queueDepth; }

    /** Total bytes written over the device lifetime. */
    std::uint64_t bytesWritten() const { return bytesWritten_; }

    /** Total page-write operations. */
    std::uint64_t pageWriteCount() const { return pageWrites_; }

    /** Erase all durable state and wear stats (new experiment). */
    void reset();

    const SsdConfig &config() const { return config_; }

  private:
    /**
     * Compute service completion for one IO of `bytes` at `now`.
     * `latency_multiplier` scales the fixed per-IO latency (tail
     * spikes); `extra_latency` adds remap penalties.
     */
    Tick scheduleIo(std::uint64_t bytes, double bandwidth,
                    double latency_multiplier = 1.0,
                    Tick extra_latency = 0);

    /**
     * Land one acknowledged page write on the durable image, applying
     * any silent fault the decision carries (flip the stored hash,
     * drop the update, or clobber a victim page), and keep the
     * corruption ledger in sync.
     */
    void applyDurableWrite(StorageKey key, std::uint64_t content_hash,
                           SilentFaultKind fault, std::uint64_t raw);

    sim::SimContext &ctx_;
    SsdConfig config_;
    std::unique_ptr<FaultModel> faultModel_;

    /** Time at which the bandwidth channel frees up. */
    Tick channelFree_ = 0;

    /** Time at which the IOPS limiter admits the next IO. */
    Tick iopsGate_ = 0;

    unsigned outstanding_ = 0;
    unsigned outstandingRuns_ = 0;
    std::uint64_t bytesWritten_ = 0;
    std::uint64_t logicalBytesWritten_ = 0;
    std::uint64_t pageWrites_ = 0;
    std::uint64_t dedupHits_ = 0;

    std::unordered_map<StorageKey, std::uint64_t, StorageKeyHash> image_;

    /** Oracle ledger of silently corrupted durable pages. */
    std::unordered_map<StorageKey, SilentFaultKind, StorageKeyHash>
        corrupted_;

    /** Highest page number written per region (misdirect victims). */
    std::unordered_map<std::uint32_t, PageNum> maxPage_;
};

} // namespace viyojit::storage

#endif // VIYOJIT_STORAGE_SSD_HH
