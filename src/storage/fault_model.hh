/**
 * @file
 * Seeded SSD fault model.
 *
 * The reproduction's durability argument (paper section 4.1) only
 * holds if the flush actually completes on a real device — one with
 * transient write errors, worn-out pages that must be remapped,
 * tail-latency spikes, and bandwidth that fades with wear.  This
 * model injects those events at IO submit time, deterministically
 * from a single seed, so every failure a torture run finds replays
 * exactly.
 *
 * The model is attached to an Ssd with Ssd::setFaultModel(); when
 * absent the device is ideal and the legacy (status-free) IO API
 * behaves as before.
 */

#ifndef VIYOJIT_STORAGE_FAULT_MODEL_HH
#define VIYOJIT_STORAGE_FAULT_MODEL_HH

#include <cstdint>
#include <unordered_set>

#include "common/rng.hh"
#include "common/types.hh"

namespace viyojit::storage
{

/** Completion status of one device IO attempt. */
enum class IoStatus
{
    /** Data durable (write) / delivered (read). */
    ok,

    /** The attempt failed; a retry of the same IO may succeed. */
    transientError,

    /**
     * The target page failed permanently.  The device remaps it on
     * the next write attempt (counted), so a retry also recovers —
     * after the remap penalty.
     */
    hardError,
};

/** Tunable fault-injection behaviour. */
struct FaultModelConfig
{
    /** Seed for the model's private RNG (deterministic replay). */
    std::uint64_t seed = 1;

    /** Per-attempt probability that a page write fails. */
    double writeErrorProb = 0.0;

    /** Per-attempt probability that a page read fails (transient). */
    double readErrorProb = 0.0;

    /**
     * Fraction of injected write errors that are hard (bad page that
     * must be remapped) rather than transient.
     */
    double hardErrorFraction = 0.2;

    /** Per-IO probability of a tail-latency spike. */
    double tailLatencyProb = 0.0;

    /** Per-IO latency multiplier applied during a spike. */
    double tailLatencyMultiplier = 8.0;

    /** Extra service latency for the write that remaps a bad page. */
    Tick remapLatency = 200_us;

    // Silent fault classes (Mutlu et al., arXiv:1805.09127): the
    // device reports IoStatus::ok but the durable image is wrong.
    // Only end-to-end verification (read-back, checksum sidecar,
    // scrub) can catch these — the status channel never will.

    /** Per-ok-write probability the stored content is bit-flipped. */
    double silentBitFlipProb = 0.0;

    /** Per-ok-write probability the write is acknowledged but never
     *  reaches the medium (old content survives). */
    double droppedWriteProb = 0.0;

    /** Per-ok-write probability the data lands on the WRONG page:
     *  the target keeps its old content and a victim page is
     *  clobbered with this write's data. */
    double misdirectedWriteProb = 0.0;
};

/** Kind of silent fault a durable page is suffering from. */
enum class SilentFaultKind
{
    none,
    bitFlip,
    droppedWrite,
    misdirectedWrite,
};

/**
 * Draws per-IO fault decisions from a seeded stream and tracks the
 * device's degradation state (bad pages, bandwidth fade).
 */
class FaultModel
{
  public:
    /** What happens to one IO attempt. */
    struct Decision
    {
        IoStatus status = IoStatus::ok;

        /** Multiplier on the fixed per-IO latency (tail spikes). */
        double latencyMultiplier = 1.0;

        /** Additive service latency (bad-page remap cost). */
        Tick extraLatency = 0;

        /** Silent fault riding on an ok status (writes only). */
        SilentFaultKind silentFault = SilentFaultKind::none;

        /** Raw entropy for the fault's effect: bit index for a flip,
         *  victim selector for a misdirected write. */
        std::uint64_t silentFaultRaw = 0;
    };

    explicit FaultModel(const FaultModelConfig &config);

    /**
     * Decide the fate of a write attempt to `region`/`page`.  A page
     * previously marked bad is remapped first (extra latency, counted)
     * and is then as good as new for this and future attempts.
     */
    Decision onWriteSubmit(std::uint32_t region, PageNum page);

    /** Decide the fate of a read attempt (transient errors only). */
    Decision onReadSubmit(std::uint32_t region, PageNum page);

    /**
     * Wear/fade factor in (0, 1] applied to the device's sustained
     * bandwidth.  Settable at runtime to model progressive wear; the
     * safe-mode governor re-derives the dirty budget from it.
     */
    double bandwidthFactor() const { return bandwidthFactor_; }
    void setBandwidthDegradation(double factor);

    /** Runtime retuning (torture phases, tests). */
    void setWriteErrorProb(double p) { config_.writeErrorProb = p; }
    void setReadErrorProb(double p) { config_.readErrorProb = p; }
    void setSilentBitFlipProb(double p)
    {
        config_.silentBitFlipProb = p;
    }
    void setDroppedWriteProb(double p)
    {
        config_.droppedWriteProb = p;
    }
    void setMisdirectedWriteProb(double p)
    {
        config_.misdirectedWriteProb = p;
    }

    /**
     * Expected write attempts per successful write under the current
     * error probability (1 / (1 - p)); the degraded-budget model uses
     * it to amplify the flush-time estimate.
     */
    double expectedWriteAttempts() const;

    std::uint64_t injectedWriteErrors() const { return writeErrors_; }
    std::uint64_t injectedReadErrors() const { return readErrors_; }
    std::uint64_t hardErrors() const { return hardErrors_; }
    std::uint64_t badPageRemaps() const { return remaps_; }
    std::uint64_t tailLatencySpikes() const { return tailSpikes_; }
    std::uint64_t injectedBitFlips() const { return bitFlips_; }
    std::uint64_t injectedDroppedWrites() const
    {
        return droppedWrites_;
    }
    std::uint64_t injectedMisdirectedWrites() const
    {
        return misdirectedWrites_;
    }

    /** All silent faults injected so far (flips + drops + misdirects). */
    std::uint64_t injectedSilentFaults() const
    {
        return bitFlips_ + droppedWrites_ + misdirectedWrites_;
    }

    /**
     * True when any silent-fault class can fire.  Gates the per-write
     * silent-fault draws: with all probabilities zero no entropy is
     * consumed, so configs predating the silent-fault classes replay
     * their seeds bit-for-bit.
     */
    bool silentFaultsEnabled() const
    {
        return config_.silentBitFlipProb > 0.0 ||
               config_.droppedWriteProb > 0.0 ||
               config_.misdirectedWriteProb > 0.0;
    }

    /** True while `page` awaits a remap (its last write hard-failed). */
    bool isBad(std::uint32_t region, PageNum page) const;

    const FaultModelConfig &config() const { return config_; }

  private:
    static std::uint64_t pack(std::uint32_t region, PageNum page)
    {
        return (static_cast<std::uint64_t>(region) << 48) ^ page;
    }

    FaultModelConfig config_;
    Rng rng_;
    double bandwidthFactor_ = 1.0;

    std::unordered_set<std::uint64_t> badPages_;

    std::uint64_t writeErrors_ = 0;
    std::uint64_t readErrors_ = 0;
    std::uint64_t hardErrors_ = 0;
    std::uint64_t remaps_ = 0;
    std::uint64_t tailSpikes_ = 0;
    std::uint64_t bitFlips_ = 0;
    std::uint64_t droppedWrites_ = 0;
    std::uint64_t misdirectedWrites_ = 0;
};

} // namespace viyojit::storage

#endif // VIYOJIT_STORAGE_FAULT_MODEL_HH
