#include "storage/ssd.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace viyojit::storage
{

Ssd::Ssd(sim::SimContext &ctx, const SsdConfig &config)
    : ctx_(ctx), config_(config)
{
    VIYOJIT_ASSERT(config.writeBandwidth > 0, "zero write bandwidth");
    VIYOJIT_ASSERT(config.readBandwidth > 0, "zero read bandwidth");
    VIYOJIT_ASSERT(config.maxIops > 0, "zero IOPS cap");
    VIYOJIT_ASSERT(config.queueDepth > 0, "zero queue depth");
}

void
Ssd::setFaultModel(std::unique_ptr<FaultModel> model)
{
    faultModel_ = std::move(model);
}

double
Ssd::effectiveWriteBandwidth() const
{
    const double factor =
        faultModel_ ? faultModel_->bandwidthFactor() : 1.0;
    return config_.writeBandwidth * factor;
}

Tick
Ssd::scheduleIo(std::uint64_t bytes, double bandwidth,
                double latency_multiplier, Tick extra_latency)
{
    const Tick now = ctx_.now();

    // IOPS limiter: one admission slot every 1/maxIops seconds.
    const Tick iops_gap = secondsToTicks(1.0 / config_.maxIops);
    const Tick admit = std::max(now, iopsGate_);
    iopsGate_ = admit + iops_gap;

    // Bandwidth channel: transfers serialize.  Wear degradation
    // stretches every transfer.
    const double factor =
        faultModel_ ? faultModel_->bandwidthFactor() : 1.0;
    const Tick transfer = secondsToTicks(
        static_cast<double>(bytes) / (bandwidth * factor));
    const Tick start = std::max(admit, channelFree_);
    channelFree_ = start + transfer;

    const Tick latency = static_cast<Tick>(
        static_cast<double>(config_.perIoLatency) * latency_multiplier);
    return channelFree_ + latency + extra_latency;
}

Tick
Ssd::submitWrite(StorageKey key, std::uint64_t content_hash,
                 std::uint64_t bytes, IoCallback on_complete,
                 std::uint64_t compressed_bytes)
{
    VIYOJIT_ASSERT(canAccept(), "SSD queue depth exceeded");

    if (config_.enableDedup) {
        auto it = image_.find(key);
        if (it != image_.end() && it->second == content_hash) {
            // Content already durable: acknowledge without IO (and
            // without a fault draw — nothing is transferred).
            ++dedupHits_;
            ctx_.stats().counter("ssd.dedup_hits").increment();
            const Tick done = ctx_.now();
            ++outstanding_;
            ctx_.events().schedule(done,
                                   [this, cb = std::move(on_complete)]() {
                --outstanding_;
                if (cb)
                    cb(IoStatus::ok);
            });
            return done;
        }
    }

    std::uint64_t transfer = bytes;
    if (config_.enableCompression && compressed_bytes > 0 &&
        compressed_bytes < bytes) {
        transfer = compressed_bytes;
    }

    FaultModel::Decision decision;
    if (faultModel_) {
        maxPage_[key.regionId] =
            std::max(maxPage_[key.regionId], key.page);
        decision = faultModel_->onWriteSubmit(key.regionId, key.page);
        if (decision.status != IoStatus::ok)
            ctx_.stats().counter("ssd.injected_write_errors").increment();
        if (decision.status == IoStatus::hardError)
            ctx_.stats().counter("ssd.injected_hard_errors").increment();
        if (decision.latencyMultiplier > 1.0)
            ctx_.stats().counter("ssd.tail_latency_spikes").increment();
        if (decision.extraLatency > 0)
            ctx_.stats().counter("ssd.bad_page_remaps").increment();
        if (decision.silentFault != SilentFaultKind::none)
            ctx_.stats().counter("ssd.injected_silent_faults").increment();
    }

    ++outstanding_;
    const Tick done =
        scheduleIo(transfer, config_.writeBandwidth,
                   decision.latencyMultiplier, decision.extraLatency);
    bytesWritten_ += transfer;
    logicalBytesWritten_ += bytes;
    ++pageWrites_;
    ctx_.stats().counter("ssd.bytes_written").increment(transfer);
    ctx_.stats().counter("ssd.page_writes").increment();

    const IoStatus status = decision.status;
    const SilentFaultKind fault = decision.silentFault;
    const std::uint64_t raw = decision.silentFaultRaw;
    ctx_.events().schedule(done, [this, key, content_hash, status,
                                  fault, raw,
                                  cb = std::move(on_complete)]() {
        if (status == IoStatus::ok)
            applyDurableWrite(key, content_hash, fault, raw);
        --outstanding_;
        if (cb)
            cb(status);
    });
    return done;
}

Tick
Ssd::submitWriteRun(StorageKey first, unsigned count,
                    const std::uint64_t *content_hashes,
                    std::uint64_t bytes_per_page,
                    RunCallback on_page_complete,
                    const std::uint64_t *compressed_bytes)
{
    VIYOJIT_ASSERT(canAccept(), "SSD queue depth exceeded");
    VIYOJIT_ASSERT(count > 0, "empty run write");

    std::vector<FaultModel::Decision> decisions(count);
    double latency_multiplier = 1.0;
    Tick extra_latency = 0;
    if (faultModel_) {
        maxPage_[first.regionId] = std::max(
            maxPage_[first.regionId], first.page + count - 1);
        for (unsigned i = 0; i < count; ++i) {
            const FaultModel::Decision decision =
                faultModel_->onWriteSubmit(first.regionId,
                                           first.page + i);
            decisions[i] = decision;
            if (decision.status != IoStatus::ok)
                ctx_.stats()
                    .counter("ssd.injected_write_errors")
                    .increment();
            if (decision.status == IoStatus::hardError)
                ctx_.stats()
                    .counter("ssd.injected_hard_errors")
                    .increment();
            if (decision.latencyMultiplier > 1.0)
                ctx_.stats()
                    .counter("ssd.tail_latency_spikes")
                    .increment();
            if (decision.extraLatency > 0)
                ctx_.stats().counter("ssd.bad_page_remaps").increment();
            if (decision.silentFault != SilentFaultKind::none)
                ctx_.stats()
                    .counter("ssd.injected_silent_faults")
                    .increment();
            latency_multiplier =
                std::max(latency_multiplier, decision.latencyMultiplier);
            extra_latency += decision.extraLatency;
        }
    }

    ++outstanding_;
    ++outstandingRuns_;
    // Per-page transfer sizes mirror submitWrite: the compressed
    // size rides when compression is on and the page shrank.
    std::uint64_t transfer = 0;
    for (unsigned i = 0; i < count; ++i) {
        std::uint64_t page_transfer = bytes_per_page;
        if (config_.enableCompression && compressed_bytes != nullptr &&
            compressed_bytes[i] > 0 &&
            compressed_bytes[i] < bytes_per_page) {
            page_transfer = compressed_bytes[i];
        }
        transfer += page_transfer;
    }
    const Tick done = scheduleIo(transfer, config_.writeBandwidth,
                                 latency_multiplier, extra_latency);
    bytesWritten_ += transfer;
    logicalBytesWritten_ += bytes_per_page * count;
    pageWrites_ += count;
    ctx_.stats().counter("ssd.bytes_written").increment(transfer);
    ctx_.stats().counter("ssd.page_writes").increment(count);
    ctx_.stats().counter("ssd.run_writes").increment();
    ctx_.stats().counter("ssd.run_pages").increment(count);

    std::vector<std::uint64_t> hashes(content_hashes,
                                      content_hashes + count);
    ctx_.events().schedule(
        done, [this, first, decisions = std::move(decisions),
               hashes = std::move(hashes),
               cb = std::move(on_page_complete)]() {
            // Durability is granted page-by-page at the single
            // completion instant: a cut before this event persists
            // nothing of the run, and a page whose slice failed keeps
            // its previous durable image.
            for (unsigned i = 0; i < decisions.size(); ++i)
                if (decisions[i].status == IoStatus::ok)
                    applyDurableWrite(
                        StorageKey{first.regionId, first.page + i},
                        hashes[i], decisions[i].silentFault,
                        decisions[i].silentFaultRaw);
            --outstanding_;
            --outstandingRuns_;
            if (cb)
                for (unsigned i = 0; i < decisions.size(); ++i)
                    cb(i, decisions[i].status);
        });
    return done;
}

Tick
Ssd::submitRead(StorageKey key, std::uint64_t bytes,
                IoCallback on_complete)
{
    VIYOJIT_ASSERT(canAccept(), "SSD queue depth exceeded");

    FaultModel::Decision decision;
    if (faultModel_) {
        decision = faultModel_->onReadSubmit(key.regionId, key.page);
        if (decision.status != IoStatus::ok)
            ctx_.stats().counter("ssd.injected_read_errors").increment();
        if (decision.latencyMultiplier > 1.0)
            ctx_.stats().counter("ssd.tail_latency_spikes").increment();
    }

    ++outstanding_;
    const Tick done =
        scheduleIo(bytes, config_.readBandwidth,
                   decision.latencyMultiplier, decision.extraLatency);
    ctx_.stats().counter("ssd.page_reads").increment();
    const IoStatus status = decision.status;
    ctx_.events().schedule(done, [this, status,
                                  cb = std::move(on_complete)]() {
        --outstanding_;
        if (cb)
            cb(status);
    });
    return done;
}

Tick
Ssd::writePage(StorageKey key, std::uint64_t content_hash,
               std::uint64_t bytes, Callback on_complete,
               std::uint64_t compressed_bytes)
{
    // Status-free wrapper: correct on the ideal device; under fault
    // injection, callers must use submitWrite and handle retries, so
    // an injected error reaching this path is a programming error.
    return submitWrite(
        key, content_hash, bytes,
        [cb = std::move(on_complete)](IoStatus status) {
            if (status != IoStatus::ok)
                panic("injected SSD write error on a fault-unaware "
                      "path; use submitWrite with retry");
            if (cb)
                cb();
        },
        compressed_bytes);
}

Tick
Ssd::writePageSync(StorageKey key, std::uint64_t content_hash,
                   std::uint64_t bytes, std::uint64_t compressed_bytes)
{
    return writePage(key, content_hash, bytes, nullptr,
                     compressed_bytes);
}

Tick
Ssd::readPage(StorageKey key, std::uint64_t bytes, Callback on_complete)
{
    return submitRead(key, bytes,
                      [cb = std::move(on_complete)](IoStatus status) {
                          if (status != IoStatus::ok)
                              panic("injected SSD read error on a "
                                    "fault-unaware path; use "
                                    "submitRead with retry");
                          if (cb)
                              cb();
                      });
}

void
Ssd::applyDurableWrite(StorageKey key, std::uint64_t content_hash,
                       SilentFaultKind fault, std::uint64_t raw)
{
    switch (fault) {
    case SilentFaultKind::none:
        image_[key] = content_hash;
        corrupted_.erase(key);
        return;
    case SilentFaultKind::bitFlip:
        // The medium stored different bits than it was handed: model
        // as a perturbed content hash (the image keeps hashes, not
        // bytes, so any perturbation stands in for any flip).
        image_[key] = content_hash ^ (1ULL << (raw & 63u));
        corrupted_[key] = SilentFaultKind::bitFlip;
        return;
    case SilentFaultKind::droppedWrite:
        // Acknowledged but never reached the medium: old content
        // survives.  Only corrupt if the old image actually differs
        // (a re-write of identical content drops harmlessly).
        if (durableHash(key) != content_hash)
            corrupted_[key] = SilentFaultKind::droppedWrite;
        else
            corrupted_.erase(key);
        return;
    case SilentFaultKind::misdirectedWrite: {
        // The data landed on the wrong page: the target keeps its old
        // (now stale) content and a victim page is clobbered.
        const PageNum span = maxPage_[key.regionId] + 1;
        const StorageKey victim{key.regionId, raw % span};
        if (victim == key) {
            // Misdirected onto itself: lands correctly after all.
            image_[key] = content_hash;
            corrupted_.erase(key);
            return;
        }
        image_[victim] = content_hash;
        corrupted_[victim] = SilentFaultKind::misdirectedWrite;
        if (durableHash(key) != content_hash)
            corrupted_[key] = SilentFaultKind::droppedWrite;
        else
            corrupted_.erase(key);
        return;
    }
    }
}

SilentFaultKind
Ssd::corruptionKind(StorageKey key) const
{
    auto it = corrupted_.find(key);
    return it == corrupted_.end() ? SilentFaultKind::none : it->second;
}

void
Ssd::forEachCorruption(
    const std::function<void(StorageKey, SilentFaultKind)> &fn) const
{
    for (const auto &[key, kind] : corrupted_)
        fn(key, kind);
}

std::uint64_t
Ssd::durableHash(StorageKey key) const
{
    auto it = image_.find(key);
    return it == image_.end() ? 0 : it->second;
}

bool
Ssd::hasPage(StorageKey key) const
{
    return image_.contains(key);
}

void
Ssd::reset()
{
    channelFree_ = 0;
    iopsGate_ = 0;
    outstanding_ = 0;
    outstandingRuns_ = 0;
    bytesWritten_ = 0;
    logicalBytesWritten_ = 0;
    pageWrites_ = 0;
    dedupHits_ = 0;
    image_.clear();
    corrupted_.clear();
    maxPage_.clear();
}

} // namespace viyojit::storage
