#include "storage/ssd.hh"

#include <algorithm>
#include <utility>

#include "common/logging.hh"

namespace viyojit::storage
{

Ssd::Ssd(sim::SimContext &ctx, const SsdConfig &config)
    : ctx_(ctx), config_(config)
{
    VIYOJIT_ASSERT(config.writeBandwidth > 0, "zero write bandwidth");
    VIYOJIT_ASSERT(config.readBandwidth > 0, "zero read bandwidth");
    VIYOJIT_ASSERT(config.maxIops > 0, "zero IOPS cap");
    VIYOJIT_ASSERT(config.queueDepth > 0, "zero queue depth");
}

Tick
Ssd::scheduleIo(std::uint64_t bytes, double bandwidth)
{
    const Tick now = ctx_.now();

    // IOPS limiter: one admission slot every 1/maxIops seconds.
    const Tick iops_gap = secondsToTicks(1.0 / config_.maxIops);
    const Tick admit = std::max(now, iopsGate_);
    iopsGate_ = admit + iops_gap;

    // Bandwidth channel: transfers serialize.
    const Tick transfer =
        secondsToTicks(static_cast<double>(bytes) / bandwidth);
    const Tick start = std::max(admit, channelFree_);
    channelFree_ = start + transfer;

    return channelFree_ + config_.perIoLatency;
}

Tick
Ssd::writePage(StorageKey key, std::uint64_t content_hash,
               std::uint64_t bytes, Callback on_complete,
               std::uint64_t compressed_bytes)
{
    VIYOJIT_ASSERT(canAccept(), "SSD queue depth exceeded");

    if (config_.enableDedup) {
        auto it = image_.find(key);
        if (it != image_.end() && it->second == content_hash) {
            // Content already durable: acknowledge without IO.
            ++dedupHits_;
            ctx_.stats().counter("ssd.dedup_hits").increment();
            const Tick done = ctx_.now();
            ++outstanding_;
            ctx_.events().schedule(done,
                                   [this, cb = std::move(on_complete)]() {
                --outstanding_;
                if (cb)
                    cb();
            });
            return done;
        }
    }

    std::uint64_t transfer = bytes;
    if (config_.enableCompression && compressed_bytes > 0 &&
        compressed_bytes < bytes) {
        transfer = compressed_bytes;
    }

    ++outstanding_;
    const Tick done = scheduleIo(transfer, config_.writeBandwidth);
    bytesWritten_ += transfer;
    logicalBytesWritten_ += bytes;
    ++pageWrites_;
    ctx_.stats().counter("ssd.bytes_written").increment(transfer);
    ctx_.stats().counter("ssd.page_writes").increment();

    ctx_.events().schedule(done, [this, key, content_hash,
                                  cb = std::move(on_complete)]() {
        image_[key] = content_hash;
        --outstanding_;
        if (cb)
            cb();
    });
    return done;
}

Tick
Ssd::writePageSync(StorageKey key, std::uint64_t content_hash,
                   std::uint64_t bytes, std::uint64_t compressed_bytes)
{
    return writePage(key, content_hash, bytes, nullptr,
                     compressed_bytes);
}

Tick
Ssd::readPage(StorageKey key, std::uint64_t bytes, Callback on_complete)
{
    (void)key;
    VIYOJIT_ASSERT(canAccept(), "SSD queue depth exceeded");
    ++outstanding_;
    const Tick done = scheduleIo(bytes, config_.readBandwidth);
    ctx_.stats().counter("ssd.page_reads").increment();
    ctx_.events().schedule(done, [this, cb = std::move(on_complete)]() {
        --outstanding_;
        if (cb)
            cb();
    });
    return done;
}

std::uint64_t
Ssd::durableHash(StorageKey key) const
{
    auto it = image_.find(key);
    return it == image_.end() ? 0 : it->second;
}

bool
Ssd::hasPage(StorageKey key) const
{
    return image_.contains(key);
}

void
Ssd::reset()
{
    channelFree_ = 0;
    iopsGate_ = 0;
    outstanding_ = 0;
    bytesWritten_ = 0;
    logicalBytesWritten_ = 0;
    pageWrites_ = 0;
    dedupHits_ = 0;
    image_.clear();
}

} // namespace viyojit::storage
