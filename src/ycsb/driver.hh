/**
 * @file
 * YCSB driver: loads a dataset into the KV store, replays an
 * operation mix against it, and reports throughput and per-operation
 * latency distributions over virtual time.
 */

#ifndef VIYOJIT_YCSB_DRIVER_HH
#define VIYOJIT_YCSB_DRIVER_HH

#include <cstdint>
#include <memory>
#include <string>

#include "common/distributions.hh"
#include "common/histogram.hh"
#include "common/rng.hh"
#include "kvstore/kvstore.hh"
#include "sim/context.hh"
#include "ycsb/workload.hh"

namespace viyojit::ycsb
{

/** Driver tunables beyond the workload spec. */
struct DriverConfig
{
    /** Records loaded before the run. */
    std::uint64_t recordCount = 16000;

    /** Operations executed in the run phase. */
    std::uint64_t operationCount = 100000;

    /**
     * Fixed service cost per operation outside NV accesses (request
     * parsing, dispatch, response).  Gives the baseline its ~30-40
     * K-ops/s absolute scale.
     */
    Tick baseOpCost = 22_us;

    /** RNG seed (every run is reproducible). */
    std::uint64_t seed = 42;

    /**
     * When true, an UPDATE rewrites the whole value through put()
     * (the Redis SET behaviour: a fresh value object per update);
     * when false it overwrites one field in place.
     */
    bool updateWritesFullValue = false;

    /**
     * When non-zero, the zipfian key chooser draws from a virtual
     * population of (recordCount << zipfScaleShift) items folded
     * down — the skew profile of a full-size (paper-scale) dataset
     * projected onto a downscaled one (see
     * ScaledZipfianDistribution).
     */
    unsigned zipfScaleShift = 0;

    /**
     * Key-space partitioning for multi-threaded runs: the record
     * space [0, recordCount) splits into `partitions` contiguous
     * slices and this driver instance owns slice `partitionIndex`.
     * load() inserts only the owned slice, the key chooser draws
     * from it alone, and tail inserts pick globally unique ids
     * (recordCount + partitionIndex + k * partitions), so N drivers
     * with partitionIndex 0..N-1 over one store — one per app
     * thread — never collide on a key.  The default (1, 0) is the
     * classic whole-keyspace driver, bit-for-bit.
     */
    unsigned partitions = 1;

    /** Which slice this driver owns; must be < partitions. */
    unsigned partitionIndex = 0;
};

/** Results of one driver run. */
struct RunResult
{
    std::uint64_t operations = 0;
    Tick elapsed = 0;

    /** Operations per second of virtual time. */
    double throughputOpsPerSec = 0.0;

    LogHistogram readLatency;
    LogHistogram updateLatency;
    LogHistogram insertLatency;
    LogHistogram rmwLatency;

    /** Latency histogram for a given op type. */
    const LogHistogram &latencyFor(OpType type) const;
};

/** Replays YCSB workloads against a KvStore. */
class YcsbDriver
{
  public:
    YcsbDriver(sim::SimContext &ctx, kvstore::KvStore &store,
               const WorkloadSpec &spec, const DriverConfig &config);

    /** Insert the initial `recordCount` records. */
    void load();

    /** Run the operation mix; returns results. */
    RunResult run();

    /** YCSB key for a record index ("user" + zero-padded id). */
    static std::string keyFor(std::uint64_t index);

  private:
    OpType chooseOp();
    std::uint64_t chooseKeyIndex();

    /**
     * Map a partition-local record index (chooser draw or insert
     * counter) to the global key id: loaded records map into the
     * partition's contiguous slice, tail inserts stride by the
     * partition count so inserts from different partitions interleave
     * without colliding.
     */
    std::uint64_t globalIdFor(std::uint64_t local) const;

    void executeOp(OpType op, RunResult &result);

    sim::SimContext &ctx_;
    kvstore::KvStore &store_;
    WorkloadSpec spec_;
    DriverConfig config_;
    Rng rng_;

    std::unique_ptr<IntegerDistribution> keyChooser_;

    /** First global record id of the owned partition slice. */
    std::uint64_t firstRecord_ = 0;

    /** Records load() inserted (the slice size). */
    std::uint64_t loadedRecords_ = 0;

    /** Partition-local record count (loaded + tail inserts). */
    std::uint64_t insertedRecords_ = 0;

    /** Reusable value buffer (mutated per op, avoids allocations). */
    std::string valueBuffer_;
    std::string fieldBuffer_;
};

} // namespace viyojit::ycsb

#endif // VIYOJIT_YCSB_DRIVER_HH
