#include "ycsb/driver.hh"

#include <algorithm>

#include "common/logging.hh"

namespace viyojit::ycsb
{

const LogHistogram &
RunResult::latencyFor(OpType type) const
{
    switch (type) {
      case OpType::read:
        return readLatency;
      case OpType::update:
        return updateLatency;
      case OpType::insert:
        return insertLatency;
      case OpType::readModifyWrite:
        return rmwLatency;
    }
    panic("unreachable op type");
}

YcsbDriver::YcsbDriver(sim::SimContext &ctx, kvstore::KvStore &store,
                       const WorkloadSpec &spec,
                       const DriverConfig &config)
    : ctx_(ctx), store_(store), spec_(spec), config_(config),
      rng_(config.seed)
{
    const double total = spec.readProportion + spec.updateProportion +
                         spec.insertProportion + spec.rmwProportion;
    if (total < 0.999 || total > 1.001)
        fatal("workload proportions must sum to 1, got ", total);
    if (config.recordCount == 0)
        fatal("record count must be non-zero");
    if (config.partitions == 0)
        fatal("partition count must be non-zero");
    if (config.partitionIndex >= config.partitions)
        fatal("partition index ", config.partitionIndex,
              " out of range for ", config.partitions, " partitions");
    if (config.recordCount < config.partitions)
        fatal("fewer records than partitions");

    // Contiguous slice; the last partition absorbs the remainder.
    const std::uint64_t per_partition =
        config.recordCount / config.partitions;
    firstRecord_ = config.partitionIndex * per_partition;
    loadedRecords_ =
        config.partitionIndex + 1 == config.partitions
            ? config.recordCount - firstRecord_
            : per_partition;

    switch (spec_.distribution) {
      case RequestDistribution::uniform:
        keyChooser_ =
            std::make_unique<UniformDistribution>(loadedRecords_);
        break;
      case RequestDistribution::zipfian:
        if (config.zipfScaleShift > 0) {
            keyChooser_ = std::make_unique<ScaledZipfianDistribution>(
                loadedRecords_, config.zipfScaleShift);
        } else {
            keyChooser_ =
                std::make_unique<ScrambledZipfianDistribution>(
                    loadedRecords_);
        }
        break;
      case RequestDistribution::latest:
        keyChooser_ =
            std::make_unique<LatestDistribution>(loadedRecords_);
        break;
    }

    valueBuffer_.assign(spec_.valueSize(), 'v');
    fieldBuffer_.assign(spec_.fieldLength, 'f');
}

std::string
YcsbDriver::keyFor(std::uint64_t index)
{
    // Fixed-width so every key has identical length (and record
    // layout), like YCSB's zero-padded key generation.
    char buf[24];
    std::snprintf(buf, sizeof(buf), "user%012llu",
                  static_cast<unsigned long long>(index));
    return buf;
}

void
YcsbDriver::load()
{
    for (std::uint64_t i = 0; i < loadedRecords_; ++i) {
        const std::uint64_t id = firstRecord_ + i;
        // Vary a few bytes so values are not identical.
        valueBuffer_[id % valueBuffer_.size()] =
            static_cast<char>('a' + (id % 26));
        const bool ok = store_.insert(keyFor(id), valueBuffer_);
        if (!ok)
            fatal("load failed at record ", id, " (heap exhausted?)");
    }
    insertedRecords_ = loadedRecords_;
    keyChooser_->setItemCount(insertedRecords_);
    ctx_.events().runUntil(ctx_.now());
}

OpType
YcsbDriver::chooseOp()
{
    const double draw = rng_.nextDouble();
    double acc = spec_.readProportion;
    if (draw < acc)
        return OpType::read;
    acc += spec_.updateProportion;
    if (draw < acc)
        return OpType::update;
    acc += spec_.insertProportion;
    if (draw < acc)
        return OpType::insert;
    return OpType::readModifyWrite;
}

std::uint64_t
YcsbDriver::chooseKeyIndex()
{
    const std::uint64_t idx = keyChooser_->next(rng_);
    return globalIdFor(std::min<std::uint64_t>(idx,
                                               insertedRecords_ - 1));
}

std::uint64_t
YcsbDriver::globalIdFor(std::uint64_t local) const
{
    if (local < loadedRecords_)
        return firstRecord_ + local;
    return config_.recordCount + config_.partitionIndex +
           (local - loadedRecords_) * config_.partitions;
}

void
YcsbDriver::executeOp(OpType op, RunResult &result)
{
    const Tick start = ctx_.now();
    // A read-modify-write is two client round trips in YCSB (a READ
    // followed by an UPDATE); every other op is one.
    ctx_.clock().advance(op == OpType::readModifyWrite
                             ? 2 * config_.baseOpCost
                             : config_.baseOpCost);

    switch (op) {
      case OpType::read: {
        const auto value = store_.get(keyFor(chooseKeyIndex()));
        VIYOJIT_ASSERT(value.has_value(), "read of loaded key missed");
        break;
      }
      case OpType::update: {
        const std::uint64_t field =
            rng_.nextBounded(spec_.fieldCount);
        fieldBuffer_[0] = static_cast<char>('a' + rng_.nextBounded(26));
        bool ok;
        if (config_.updateWritesFullValue) {
            // Redis SET: replace the whole value object.
            valueBuffer_[field * spec_.fieldLength] = fieldBuffer_[0];
            ok = store_.put(keyFor(chooseKeyIndex()), valueBuffer_);
        } else {
            // Field-granular overwrite in place.
            ok = store_.updateInPlace(keyFor(chooseKeyIndex()),
                                      field * spec_.fieldLength,
                                      fieldBuffer_);
        }
        VIYOJIT_ASSERT(ok, "update of loaded key failed");
        break;
      }
      case OpType::insert: {
        const std::uint64_t id = globalIdFor(insertedRecords_);
        const bool ok = store_.insert(keyFor(id), valueBuffer_);
        if (ok) {
            ++insertedRecords_;
            keyChooser_->setItemCount(insertedRecords_);
        }
        break;
      }
      case OpType::readModifyWrite: {
        fieldBuffer_[0] = static_cast<char>('a' + rng_.nextBounded(26));
        const bool ok = store_.readModifyWrite(
            keyFor(chooseKeyIndex()), fieldBuffer_);
        VIYOJIT_ASSERT(ok, "read-modify-write of loaded key failed");
        break;
      }
    }

    // Deliver due events (epoch boundaries, IO completions).
    ctx_.events().runUntil(ctx_.now());

    const Tick latency = ctx_.now() - start;
    switch (op) {
      case OpType::read:
        result.readLatency.record(latency);
        break;
      case OpType::update:
        result.updateLatency.record(latency);
        break;
      case OpType::insert:
        result.insertLatency.record(latency);
        break;
      case OpType::readModifyWrite:
        result.rmwLatency.record(latency);
        break;
    }
}

RunResult
YcsbDriver::run()
{
    RunResult result;
    const Tick start = ctx_.now();
    for (std::uint64_t i = 0; i < config_.operationCount; ++i)
        executeOp(chooseOp(), result);
    result.operations = config_.operationCount;
    result.elapsed = ctx_.now() - start;
    result.throughputOpsPerSec =
        result.elapsed == 0
            ? 0.0
            : static_cast<double>(result.operations) /
                  ticksToSeconds(result.elapsed);
    return result;
}

} // namespace viyojit::ycsb
