/**
 * @file
 * YCSB workload definitions (Cooper et al., SoCC '10), matching the
 * mixes the paper evaluates: A, B, C, D, and F.  YCSB-E needs
 * cross-key scans, which the store does not support — same exclusion
 * as the paper.
 */

#ifndef VIYOJIT_YCSB_WORKLOAD_HH
#define VIYOJIT_YCSB_WORKLOAD_HH

#include <cstdint>
#include <string>

#include "common/logging.hh"

namespace viyojit::ycsb
{

/** Operation classes issued by the driver. */
enum class OpType
{
    read,
    update,
    insert,
    readModifyWrite,
};

/** Key-request distribution families. */
enum class RequestDistribution
{
    uniform,
    zipfian,
    latest,
};

/** One YCSB workload's operation mix and key distribution. */
struct WorkloadSpec
{
    std::string name;
    double readProportion = 0.0;
    double updateProportion = 0.0;
    double insertProportion = 0.0;
    double rmwProportion = 0.0;
    RequestDistribution distribution = RequestDistribution::zipfian;

    /** YCSB defaults: 10 fields x 100 bytes. */
    std::uint32_t fieldCount = 10;
    std::uint32_t fieldLength = 100;

    std::uint32_t valueSize() const { return fieldCount * fieldLength; }
};

/** Standard workload by letter: 'A', 'B', 'C', 'D', or 'F'. */
inline WorkloadSpec
standardWorkload(char letter)
{
    WorkloadSpec spec;
    switch (letter) {
      case 'A':
        // Update heavy: interactive apps creating content rapidly.
        spec = {"YCSB-A", 0.5, 0.5, 0.0, 0.0,
                RequestDistribution::zipfian};
        break;
      case 'B':
        // Read mostly: document serving.
        spec = {"YCSB-B", 0.95, 0.05, 0.0, 0.0,
                RequestDistribution::zipfian};
        break;
      case 'C':
        // Read only: image-serving front ends.
        spec = {"YCSB-C", 1.0, 0.0, 0.0, 0.0,
                RequestDistribution::zipfian};
        break;
      case 'D':
        // Read latest: social-media posts.
        spec = {"YCSB-D", 0.95, 0.0, 0.05, 0.0,
                RequestDistribution::latest};
        break;
      case 'F':
        // Read-modify-write: user record stores.
        spec = {"YCSB-F", 0.5, 0.0, 0.0, 0.5,
                RequestDistribution::zipfian};
        break;
      default:
        fatal("unknown YCSB workload '", letter,
              "' (supported: A, B, C, D, F)");
    }
    return spec;
}

} // namespace viyojit::ycsb

#endif // VIYOJIT_YCSB_WORKLOAD_HH
