/**
 * @file
 * Persistent ring log on battery-backed DRAM.
 *
 * The paper's introduction motivates NV-DRAM with write-ahead logs
 * and database logging (Fang et al., Huang et al.): appends are the
 * access pattern where Viyojit shines, because the freshly written
 * tail is the only hot region — everything behind it cools
 * immediately and is proactively copied out, so a tiny battery
 * covers an arbitrarily large log.
 *
 * Layout: a fixed header, then a circular byte region of
 * length-prefixed, checksummed records.  All state lives in the NV
 * region (offsets, never pointers), so the log re-attaches after a
 * power cycle.  A record never straddles the wrap point; a wrap
 * marker skips the slack at the end.
 */

#ifndef VIYOJIT_PLOG_PLOG_HH
#define VIYOJIT_PLOG_PLOG_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "pheap/nv_space.hh"

namespace viyojit::plog
{

/** Sequence number of a record; strictly increasing from 1. */
using SequenceNum = std::uint64_t;

/** Log statistics. */
struct LogStats
{
    std::uint64_t records = 0;
    std::uint64_t bytesUsed = 0;
    std::uint64_t bytesCapacity = 0;
    SequenceNum headSeq = 0; ///< Oldest live record (0 when empty).
    SequenceNum tailSeq = 0; ///< Newest live record (0 when empty).
};

/** Append-only circular log in an NvSpace. */
class PersistentLog
{
  public:
    /** Format a fresh log over the whole space. */
    static PersistentLog create(pheap::NvSpace &space);

    /**
     * Re-attach after a power cycle (header is authoritative).  Runs
     * the validate() integrity scan before returning; a live record
     * whose CRC32C fails the scan is fatal — a recovered image with a
     * corrupt log must not be silently served.
     */
    static PersistentLog attach(pheap::NvSpace &space);

    /**
     * Append one record.
     * @return its sequence number, or 0 when the log is full (free
     *         space by consuming with truncateFront first).
     */
    SequenceNum append(std::string_view payload);

    /**
     * Read the record with the given sequence number.
     * @return payload, or nullopt when out of the live range.
     */
    std::optional<std::string> read(SequenceNum seq) const;

    /**
     * Drop records with sequence <= `up_to` (consumer acknowledge),
     * reclaiming their space.
     * @return records dropped.
     */
    std::uint64_t truncateFront(SequenceNum up_to);

    /** Walk every live record in order. */
    void forEach(const std::function<void(SequenceNum,
                                          std::string_view)> &fn) const;

    /**
     * Integrity scan: verify every live record's checksum (useful
     * after recovering the backing file of the real runtime).
     * @return false if any record is corrupt.
     */
    bool validate() const;

    LogStats stats() const;

    /** Largest payload a log of this capacity could ever accept. */
    std::uint64_t maxPayload() const;

  private:
    /** On-NV header at offset 0. */
    struct Header
    {
        std::uint32_t magic;
        std::uint32_t version;
        std::uint64_t capacity;  ///< Ring bytes (excludes header).
        std::uint64_t headOff;   ///< Ring offset of the oldest record.
        std::uint64_t tailOff;   ///< Ring offset one past the newest.
        std::uint64_t records;
        SequenceNum headSeq;
        SequenceNum nextSeq;
    };

    /** Per-record header inside the ring. */
    struct RecordHeader
    {
        std::uint32_t length; ///< Payload bytes; wrapMark = skip.
        std::uint32_t pad;
        SequenceNum seq;
        std::uint64_t checksum;
    };

    static constexpr std::uint32_t magicValue = 0x564c4f47; // "VLOG"

    /** v2: record checksums switched from 64-bit FNV-1a to the shared
     *  CRC32C (common/checksum.hh); attach rejects other versions. */
    static constexpr std::uint32_t formatVersion = 2;

    static constexpr std::uint32_t wrapMark = 0xffffffff;

    explicit PersistentLog(pheap::NvSpace &space);

    static std::uint64_t checksumOf(SequenceNum seq,
                                    std::string_view payload);

    Header loadHeader() const;
    void storeHeader(const Header &h);

    /** Ring offset -> space offset. */
    std::uint64_t ringBase() const;

    /** Free bytes available for appending. */
    std::uint64_t freeBytes(const Header &h) const;

    /**
     * Locate a live record by walking from the head.
     * @return ring offset, or capacity when not found.
     */
    std::uint64_t findRecord(const Header &h, SequenceNum seq) const;

    pheap::NvSpace &space_;
};

} // namespace viyojit::plog

#endif // VIYOJIT_PLOG_PLOG_HH
