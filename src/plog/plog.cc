#include "plog/plog.hh"

#include <cstring>
#include <functional>

#include "common/checksum.hh"
#include "common/logging.hh"

namespace viyojit::plog
{

namespace
{

constexpr std::uint64_t headerReserve = 64;

/** Records are 16-byte aligned inside the ring. */
constexpr std::uint64_t
alignUp(std::uint64_t v)
{
    return (v + 15) & ~std::uint64_t{15};
}

} // namespace

PersistentLog::PersistentLog(pheap::NvSpace &space)
    : space_(space)
{
}

std::uint64_t
PersistentLog::ringBase() const
{
    return headerReserve;
}

PersistentLog::Header
PersistentLog::loadHeader() const
{
    Header h;
    space_.noteRead(0, sizeof(Header));
    std::memcpy(&h, space_.base(), sizeof(Header));
    return h;
}

void
PersistentLog::storeHeader(const Header &h)
{
    space_.noteWrite(0, sizeof(Header));
    std::memcpy(space_.base(), &h, sizeof(Header));
}

std::uint64_t
PersistentLog::checksumOf(SequenceNum seq, std::string_view payload)
{
    // CRC32C shared with the flush-commit sidecars and the scrubber
    // (common/checksum.hh), chained over the sequence number so a
    // payload replayed under the wrong sequence still fails.
    return common::crc32c(payload.data(), payload.size(),
                          common::crc32cU64(seq));
}

PersistentLog
PersistentLog::create(pheap::NvSpace &space)
{
    if (space.size() < headerReserve + 256)
        fatal("NV region too small for a log");
    PersistentLog log(space);
    Header h{};
    h.magic = magicValue;
    h.version = formatVersion;
    h.capacity = (space.size() - headerReserve) & ~std::uint64_t{15};
    h.headOff = 0;
    h.tailOff = 0;
    h.records = 0;
    h.headSeq = 0;
    h.nextSeq = 1;
    log.storeHeader(h);
    return log;
}

PersistentLog
PersistentLog::attach(pheap::NvSpace &space)
{
    PersistentLog log(space);
    const Header h = log.loadHeader();
    if (h.magic != magicValue)
        fatal("attach to an unformatted log region");
    if (h.version != formatVersion)
        fatal("log format version mismatch (found ", h.version,
              ", need ", formatVersion,
              ") — v2 switched record checksums to CRC32C");
    if (h.capacity !=
        ((space.size() - headerReserve) & ~std::uint64_t{15}))
        fatal("log was formatted with a different region size");
    // Re-attach happens exactly where corruption would: after the
    // region's backing image was recovered from a power cycle.  Scan
    // every live record before handing the log out, so a torn or
    // rotted record surfaces at attach time instead of at some later
    // read.
    if (!log.validate())
        fatal("log integrity scan failed at attach: a live record's "
              "CRC32C does not match its payload");
    return log;
}

std::uint64_t
PersistentLog::freeBytes(const Header &h) const
{
    if (h.records == 0)
        return h.capacity;
    if (h.tailOff > h.headOff)
        return h.capacity - (h.tailOff - h.headOff);
    if (h.tailOff < h.headOff)
        return h.headOff - h.tailOff;
    return 0; // full ring (tail caught up to head with records live)
}

std::uint64_t
PersistentLog::maxPayload() const
{
    const Header h = loadHeader();
    // A record must fit before the wrap point in the worst case:
    // half the ring is a safe, simple bound.
    return h.capacity / 2 - sizeof(RecordHeader);
}

SequenceNum
PersistentLog::append(std::string_view payload)
{
    Header h = loadHeader();
    const std::uint64_t need =
        alignUp(sizeof(RecordHeader) + payload.size());
    if (payload.size() > maxPayload())
        return 0;

    // A record never straddles the ring end: if it does not fit in
    // the slack, a wrap marker skips to the start.
    std::uint64_t tail = h.tailOff;
    std::uint64_t extra = 0;
    bool wraps = false;
    if (tail + need > h.capacity) {
        extra = h.capacity - tail; // the skipped slack
        wraps = true;
    }
    if (freeBytes(h) < need + extra)
        return 0;

    if (wraps) {
        if (h.capacity - tail >= sizeof(RecordHeader)) {
            RecordHeader wrap{};
            wrap.length = wrapMark;
            space_.noteWrite(ringBase() + tail, sizeof(RecordHeader));
            std::memcpy(space_.base() + ringBase() + tail, &wrap,
                        sizeof(RecordHeader));
        }
        tail = 0;
    }

    RecordHeader rec{};
    rec.length = static_cast<std::uint32_t>(payload.size());
    rec.seq = h.nextSeq;
    rec.checksum = checksumOf(h.nextSeq, payload);
    space_.noteWrite(ringBase() + tail,
                     sizeof(RecordHeader) + payload.size());
    std::memcpy(space_.base() + ringBase() + tail, &rec,
                sizeof(RecordHeader));
    std::memcpy(space_.base() + ringBase() + tail +
                    sizeof(RecordHeader),
                payload.data(), payload.size());

    if (h.records == 0)
        h.headSeq = h.nextSeq;
    h.tailOff = tail + need;
    if (h.tailOff == h.capacity)
        h.tailOff = 0;
    ++h.records;
    const SequenceNum seq = h.nextSeq;
    ++h.nextSeq;
    storeHeader(h);
    return seq;
}

std::uint64_t
PersistentLog::findRecord(const Header &h, SequenceNum seq) const
{
    if (h.records == 0 || seq < h.headSeq || seq >= h.nextSeq)
        return h.capacity;
    std::uint64_t off = h.headOff;
    for (std::uint64_t i = 0; i < h.records; ++i) {
        if (h.capacity - off < sizeof(RecordHeader)) {
            // Slack too small for even a wrap marker: implicit wrap.
            off = 0;
            --i;
            continue;
        }
        RecordHeader rec;
        space_.noteRead(ringBase() + off, sizeof(RecordHeader));
        std::memcpy(&rec, space_.base() + ringBase() + off,
                    sizeof(RecordHeader));
        if (rec.length == wrapMark) {
            off = 0;
            --i; // the marker is not a record
            continue;
        }
        if (rec.seq == seq)
            return off;
        off += alignUp(sizeof(RecordHeader) + rec.length);
        if (off >= h.capacity)
            off = 0;
    }
    return h.capacity;
}

std::optional<std::string>
PersistentLog::read(SequenceNum seq) const
{
    const Header h = loadHeader();
    const std::uint64_t off = findRecord(h, seq);
    if (off == h.capacity)
        return std::nullopt;
    RecordHeader rec;
    std::memcpy(&rec, space_.base() + ringBase() + off,
                sizeof(RecordHeader));
    std::string payload(rec.length, '\0');
    space_.noteRead(ringBase() + off + sizeof(RecordHeader),
                    rec.length);
    std::memcpy(payload.data(),
                space_.base() + ringBase() + off +
                    sizeof(RecordHeader),
                rec.length);
    return payload;
}

std::uint64_t
PersistentLog::truncateFront(SequenceNum up_to)
{
    Header h = loadHeader();
    std::uint64_t dropped = 0;
    std::uint64_t off = h.headOff;
    while (h.records > 0 && h.headSeq <= up_to) {
        if (h.capacity - off < sizeof(RecordHeader)) {
            off = 0;
            continue;
        }
        RecordHeader rec;
        space_.noteRead(ringBase() + off, sizeof(RecordHeader));
        std::memcpy(&rec, space_.base() + ringBase() + off,
                    sizeof(RecordHeader));
        if (rec.length == wrapMark) {
            off = 0;
            continue;
        }
        VIYOJIT_ASSERT(rec.seq == h.headSeq, "log chain corrupt");
        off += alignUp(sizeof(RecordHeader) + rec.length);
        if (off >= h.capacity)
            off = 0;
        ++h.headSeq;
        --h.records;
        ++dropped;
    }
    h.headOff = off;
    if (h.records == 0) {
        // Reset to a compact empty state.
        h.headOff = 0;
        h.tailOff = 0;
        h.headSeq = 0;
    }
    storeHeader(h);
    return dropped;
}

void
PersistentLog::forEach(
    const std::function<void(SequenceNum, std::string_view)> &fn) const
{
    const Header h = loadHeader();
    std::uint64_t off = h.headOff;
    for (std::uint64_t i = 0; i < h.records; ++i) {
        if (h.capacity - off < sizeof(RecordHeader)) {
            off = 0;
            --i;
            continue;
        }
        RecordHeader rec;
        space_.noteRead(ringBase() + off, sizeof(RecordHeader));
        std::memcpy(&rec, space_.base() + ringBase() + off,
                    sizeof(RecordHeader));
        if (rec.length == wrapMark) {
            off = 0;
            --i;
            continue;
        }
        const char *payload =
            space_.base() + ringBase() + off + sizeof(RecordHeader);
        fn(rec.seq, std::string_view(payload, rec.length));
        off += alignUp(sizeof(RecordHeader) + rec.length);
        if (off >= h.capacity)
            off = 0;
    }
}

bool
PersistentLog::validate() const
{
    bool ok = true;
    forEach([&](SequenceNum seq, std::string_view payload) {
        const Header h = loadHeader();
        const std::uint64_t off = findRecord(h, seq);
        RecordHeader rec;
        std::memcpy(&rec, space_.base() + ringBase() + off,
                    sizeof(RecordHeader));
        if (rec.checksum != checksumOf(seq, payload))
            ok = false;
    });
    return ok;
}

LogStats
PersistentLog::stats() const
{
    const Header h = loadHeader();
    LogStats s;
    s.records = h.records;
    s.bytesCapacity = h.capacity;
    s.bytesUsed = h.capacity - freeBytes(h);
    s.headSeq = h.records ? h.headSeq : 0;
    s.tailSeq = h.records ? h.nextSeq - 1 : 0;
    return s;
}

} // namespace viyojit::plog
