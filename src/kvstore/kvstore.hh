/**
 * @file
 * Persistent in-memory key-value store (the role of the paper's
 * Redis modified to keep keys, values, and metadata in a non-volatile
 * heap via Intel PMEM).
 *
 * Memory layout mirrors Redis's, because the evaluation's shape
 * depends on it:
 *
 *  - per-record *metadata* objects (the dictEntry + robj + key
 *    equivalent) are small allocations that pack densely into pages,
 *    so the pages holding them are few and hot;
 *  - *values* are separate ~1 KiB allocations spread over most of the
 *    heap;
 *  - a SET-style update allocates a fresh value object and frees the
 *    old one (allocator churn lands each update on a different,
 *    usually cold, page) — that is why update-heavy YCSB workloads
 *    dirty far more pages than read-heavy ones;
 *  - GET updates record metadata (access stamp — Redis's robj->lru),
 *    mirroring "while the application is read-only, internally Redis
 *    still performs several store instructions" (paper section 6.1),
 *    which keeps metadata pages dirty and gives even YCSB-C a
 *    non-zero Viyojit overhead.
 *
 * Cross-key transactions (YCSB-E scans) are unsupported, exactly as
 * in the paper.
 */

#ifndef VIYOJIT_KVSTORE_KVSTORE_HH
#define VIYOJIT_KVSTORE_KVSTORE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "pheap/pheap.hh"

namespace viyojit::kvstore
{

/** Store-level statistics. */
struct StoreStats
{
    std::uint64_t records = 0;
    std::uint64_t gets = 0;
    std::uint64_t puts = 0;
    std::uint64_t inserts = 0;
    std::uint64_t updates = 0;
    std::uint64_t removes = 0;
    std::uint64_t misses = 0;
};

/** Hash-table KV store in a persistent heap. */
class KvStore
{
  public:
    /**
     * Create a fresh store in a freshly created heap.
     * @param bucket_count hash-table width (use ~1.3x expected keys).
     */
    static KvStore create(pheap::PersistentHeap &heap,
                          std::uint64_t bucket_count);

    /** Re-attach to the store inside a recovered heap. */
    static KvStore attach(pheap::PersistentHeap &heap);

    /**
     * Insert or overwrite a full value.
     * @return false when the heap is out of space.
     */
    bool put(std::string_view key, std::string_view value);

    /**
     * Redis-style updates: when enabled, put() on an existing key
     * allocates a fresh value object and frees the old one (the way
     * Redis SET does) instead of overwriting in place.
     */
    void setAllocateOnUpdate(bool enable)
    {
        allocateOnUpdate_ = enable;
    }

    bool allocateOnUpdate() const { return allocateOnUpdate_; }

    /** Insert only; fails (returns false) when the key exists. */
    bool insert(std::string_view key, std::string_view value);

    /**
     * Overwrite `len` bytes of the value at `offset` in place (a
     * YCSB field update).  Fails when the key is missing or the
     * range does not fit the stored value.
     */
    bool updateInPlace(std::string_view key, std::uint64_t offset,
                       std::string_view bytes);

    /** Fetch a value; updates record access metadata. */
    std::optional<std::string> get(std::string_view key);

    /** Read-modify-write: fetch, then rewrite `len` bytes at 0. */
    bool readModifyWrite(std::string_view key, std::string_view bytes);

    /** Remove a key. @return true when it existed. */
    bool remove(std::string_view key);

    /** True when the key exists (no metadata update). */
    bool contains(std::string_view key) const;

    /** Number of live records. */
    std::uint64_t size() const;

    const StoreStats &stats() const { return stats_; }

    std::uint64_t bucketCount() const { return bucketCount_; }

  private:
    /** On-NV table descriptor (the heap root points here). */
    struct TableDesc
    {
        std::uint64_t bucketCount;
        std::uint64_t recordCount;
        std::uint64_t bucketsOffset;
    };

    /**
     * On-NV record metadata; the key bytes follow.  `bookkeeping`
     * stands in for the dictEntry/robj fields a real Redis carries,
     * sizing the metadata object realistically (~128 B with a short
     * key) so metadata pages pack densely, like jemalloc bins do.
     */
    struct RecordMeta
    {
        pheap::NvOffset next;
        pheap::NvOffset valueOffset;
        std::uint32_t keyLen;
        std::uint32_t valueLen;
        std::uint64_t version;
        std::uint64_t accessStamp;
        std::uint8_t bookkeeping[64];
    };

    KvStore(pheap::PersistentHeap &heap, pheap::NvOffset desc_offset);

    std::uint64_t bucketIndex(std::string_view key) const;
    pheap::NvOffset bucketSlotOffset(std::uint64_t index) const;

    /**
     * Find a record and its owning slot.
     * @param key lookup key.
     * @param prev_slot_out offset of the link pointing at the record.
     * @return metadata offset or nullOffset.
     */
    pheap::NvOffset findRecord(std::string_view key,
                               pheap::NvOffset *prev_slot_out) const;

    bool keyMatches(pheap::NvOffset meta, const RecordMeta &header,
                    std::string_view key) const;

    void bumpMetadata(pheap::NvOffset meta, RecordMeta &header,
                      bool count_as_update);

    /** Insert without stats accounting or existence check. */
    bool insertInternal(std::string_view key, std::string_view value);

    /** Remove without stats accounting. */
    bool removeInternal(std::string_view key);

    /** Point a record at a freshly allocated value object. */
    bool replaceValue(pheap::NvOffset meta, RecordMeta &header,
                      std::string_view value);

    pheap::PersistentHeap &heap_;
    pheap::NvOffset descOffset_;
    std::uint64_t bucketCount_;
    pheap::NvOffset bucketsOffset_;
    StoreStats stats_;
    bool allocateOnUpdate_ = false;
};

} // namespace viyojit::kvstore

#endif // VIYOJIT_KVSTORE_KVSTORE_HH
