#include "kvstore/kvstore.hh"

#include <algorithm>
#include <cstddef>
#include <vector>

#include "common/logging.hh"

namespace viyojit::kvstore
{

namespace
{

/** FNV-1a over the key bytes. */
std::uint64_t
hashKey(std::string_view key)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char c : key) {
        hash ^= c;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace

KvStore::KvStore(pheap::PersistentHeap &heap,
                 pheap::NvOffset desc_offset)
    : heap_(heap), descOffset_(desc_offset)
{
    const auto desc = heap_.load<TableDesc>(descOffset_);
    bucketCount_ = desc.bucketCount;
    bucketsOffset_ = desc.bucketsOffset;
}

KvStore
KvStore::create(pheap::PersistentHeap &heap, std::uint64_t bucket_count)
{
    if (bucket_count == 0)
        fatal("KV store needs at least one bucket");
    const pheap::NvOffset desc_off = heap.alloc(sizeof(TableDesc));
    if (desc_off == pheap::nullOffset)
        fatal("out of NV space for table descriptor");
    const pheap::NvOffset buckets_off =
        heap.alloc(bucket_count * sizeof(pheap::NvOffset));
    if (buckets_off == pheap::nullOffset)
        fatal("out of NV space for bucket array");

    // Zero the bucket array.
    std::vector<pheap::NvOffset> zeros(bucket_count, pheap::nullOffset);
    heap.writeBytes(buckets_off, zeros.data(),
                    bucket_count * sizeof(pheap::NvOffset));

    TableDesc desc{bucket_count, 0, buckets_off};
    heap.store(desc_off, desc);
    heap.setRoot(desc_off);
    return KvStore(heap, desc_off);
}

KvStore
KvStore::attach(pheap::PersistentHeap &heap)
{
    const pheap::NvOffset desc_off = heap.root();
    if (desc_off == pheap::nullOffset)
        fatal("heap has no KV store root");
    return KvStore(heap, desc_off);
}

std::uint64_t
KvStore::bucketIndex(std::string_view key) const
{
    return hashKey(key) % bucketCount_;
}

pheap::NvOffset
KvStore::bucketSlotOffset(std::uint64_t index) const
{
    return bucketsOffset_ + index * sizeof(pheap::NvOffset);
}

bool
KvStore::keyMatches(pheap::NvOffset meta, const RecordMeta &header,
                    std::string_view key) const
{
    if (header.keyLen != key.size())
        return false;
    std::string stored(header.keyLen, '\0');
    heap_.readBytes(meta + sizeof(RecordMeta), stored.data(),
                    header.keyLen);
    return stored == key;
}

pheap::NvOffset
KvStore::findRecord(std::string_view key,
                    pheap::NvOffset *prev_slot_out) const
{
    pheap::NvOffset slot = bucketSlotOffset(bucketIndex(key));
    pheap::NvOffset meta = heap_.load<pheap::NvOffset>(slot);
    while (meta != pheap::nullOffset) {
        const auto header = heap_.load<RecordMeta>(meta);
        if (keyMatches(meta, header, key)) {
            if (prev_slot_out)
                *prev_slot_out = slot;
            return meta;
        }
        slot = meta + offsetof(RecordMeta, next);
        meta = header.next;
    }
    if (prev_slot_out)
        *prev_slot_out = slot;
    return pheap::nullOffset;
}

void
KvStore::bumpMetadata(pheap::NvOffset meta, RecordMeta &header,
                      bool count_as_update)
{
    // Metadata stores on every operation — the Redis robj->lru-style
    // internal writes the paper calls out for the read-only workload.
    ++header.accessStamp;
    if (count_as_update)
        ++header.version;
    heap_.store(meta, header);
}

bool
KvStore::replaceValue(pheap::NvOffset meta, RecordMeta &header,
                      std::string_view value)
{
    // Allocate before freeing so the new value cannot reuse the old
    // block: under churn each update hops to the block released by
    // an earlier update of some other key, like a real allocator.
    const pheap::NvOffset fresh = heap_.alloc(value.size());
    if (fresh == pheap::nullOffset)
        return false;
    heap_.writeBytes(fresh, value.data(), value.size());
    const pheap::NvOffset old = header.valueOffset;
    header.valueOffset = fresh;
    header.valueLen = static_cast<std::uint32_t>(value.size());
    bumpMetadata(meta, header, /*count_as_update=*/true);
    if (old != pheap::nullOffset)
        heap_.free(old);
    return true;
}

bool
KvStore::insertInternal(std::string_view key, std::string_view value)
{
    const pheap::NvOffset meta =
        heap_.alloc(sizeof(RecordMeta) + key.size());
    if (meta == pheap::nullOffset)
        return false;
    const pheap::NvOffset value_block =
        value.empty() ? pheap::nullOffset : heap_.alloc(value.size());
    if (!value.empty() && value_block == pheap::nullOffset) {
        heap_.free(meta);
        return false;
    }

    const pheap::NvOffset slot = bucketSlotOffset(bucketIndex(key));
    RecordMeta header{};
    header.next = heap_.load<pheap::NvOffset>(slot);
    header.valueOffset = value_block;
    header.keyLen = static_cast<std::uint32_t>(key.size());
    header.valueLen = static_cast<std::uint32_t>(value.size());
    header.version = 1;
    header.accessStamp = 1;
    heap_.store(meta, header);
    heap_.writeBytes(meta + sizeof(RecordMeta), key.data(), key.size());
    if (!value.empty())
        heap_.writeBytes(value_block, value.data(), value.size());
    heap_.store<pheap::NvOffset>(slot, meta);

    auto desc = heap_.load<TableDesc>(descOffset_);
    ++desc.recordCount;
    heap_.store(descOffset_, desc);
    return true;
}

bool
KvStore::put(std::string_view key, std::string_view value)
{
    ++stats_.puts;
    pheap::NvOffset meta = findRecord(key, nullptr);
    if (meta != pheap::nullOffset) {
        auto header = heap_.load<RecordMeta>(meta);
        if (!allocateOnUpdate_ && header.valueOffset != pheap::nullOffset) {
            const std::uint64_t capacity =
                heap_.allocSize(header.valueOffset);
            if (value.size() <= capacity) {
                // In-place overwrite.
                heap_.writeBytes(header.valueOffset, value.data(),
                                 value.size());
                header.valueLen =
                    static_cast<std::uint32_t>(value.size());
                bumpMetadata(meta, header, /*count_as_update=*/true);
                ++stats_.updates;
                return true;
            }
        }
        // Redis SET path (or a grow): fresh value object.
        if (!replaceValue(meta, header, value))
            return false;
        ++stats_.updates;
        return true;
    }
    if (!insertInternal(key, value))
        return false;
    ++stats_.updates;
    return true;
}

bool
KvStore::insert(std::string_view key, std::string_view value)
{
    if (findRecord(key, nullptr) != pheap::nullOffset)
        return false;
    if (!insertInternal(key, value))
        return false;
    ++stats_.inserts;
    return true;
}

bool
KvStore::updateInPlace(std::string_view key, std::uint64_t offset,
                       std::string_view bytes)
{
    const pheap::NvOffset meta = findRecord(key, nullptr);
    if (meta == pheap::nullOffset) {
        ++stats_.misses;
        return false;
    }
    auto header = heap_.load<RecordMeta>(meta);
    if (offset + bytes.size() > header.valueLen)
        return false;
    heap_.writeBytes(header.valueOffset + offset, bytes.data(),
                     bytes.size());
    bumpMetadata(meta, header, /*count_as_update=*/true);
    ++stats_.updates;
    return true;
}

std::optional<std::string>
KvStore::get(std::string_view key)
{
    ++stats_.gets;
    const pheap::NvOffset meta = findRecord(key, nullptr);
    if (meta == pheap::nullOffset) {
        ++stats_.misses;
        return std::nullopt;
    }
    auto header = heap_.load<RecordMeta>(meta);
    std::string value(header.valueLen, '\0');
    if (header.valueLen > 0)
        heap_.readBytes(header.valueOffset, value.data(),
                        header.valueLen);
    bumpMetadata(meta, header, /*count_as_update=*/false);
    return value;
}

bool
KvStore::readModifyWrite(std::string_view key, std::string_view bytes)
{
    auto value = get(key);
    --stats_.gets;
    if (!value)
        return false;
    const std::uint64_t len =
        std::min<std::uint64_t>(bytes.size(), value->size());
    if (allocateOnUpdate_) {
        value->replace(0, len, bytes.substr(0, len));
        const bool ok = put(key, *value);
        if (ok)
            --stats_.puts;
        return ok;
    }
    return updateInPlace(key, 0, bytes.substr(0, len));
}

bool
KvStore::removeInternal(std::string_view key)
{
    pheap::NvOffset prev_slot = pheap::nullOffset;
    const pheap::NvOffset meta = findRecord(key, &prev_slot);
    if (meta == pheap::nullOffset)
        return false;
    const auto header = heap_.load<RecordMeta>(meta);
    heap_.store<pheap::NvOffset>(prev_slot, header.next);
    if (header.valueOffset != pheap::nullOffset)
        heap_.free(header.valueOffset);
    heap_.free(meta);

    auto desc = heap_.load<TableDesc>(descOffset_);
    VIYOJIT_ASSERT(desc.recordCount > 0, "record count underflow");
    --desc.recordCount;
    heap_.store(descOffset_, desc);
    return true;
}

bool
KvStore::remove(std::string_view key)
{
    if (!removeInternal(key)) {
        ++stats_.misses;
        return false;
    }
    ++stats_.removes;
    return true;
}

bool
KvStore::contains(std::string_view key) const
{
    return findRecord(key, nullptr) != pheap::nullOffset;
}

std::uint64_t
KvStore::size() const
{
    return heap_.load<TableDesc>(descOffset_).recordCount;
}

} // namespace viyojit::kvstore
