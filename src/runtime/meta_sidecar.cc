#include "runtime/meta_sidecar.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/checksum.hh"
#include "common/logging.hh"
#include "runtime/region.hh"

namespace viyojit::runtime
{

namespace
{

/** Sealed header as stored in each slot (64 bytes). */
struct MetaHeader
{
    std::uint64_t magic = 0;
    std::uint32_t version = 0;
    std::uint32_t reserved = 0;
    std::uint64_t generation = 0;
    std::uint64_t lastSealedEpoch = 0;
    std::uint64_t lastSealedRunId = 0;
    std::uint64_t pageCount = 0;
    std::uint64_t pageSize = 0;
    std::uint32_t headerCrc = 0;
    std::uint32_t reserved2 = 0;
};

static_assert(sizeof(MetaHeader) == 64, "on-disk header layout");

constexpr std::size_t kHeaderCrcSpan = offsetof(MetaHeader, headerCrc);
constexpr std::size_t kEntryCrcSpan = offsetof(MetaEntry, entryCrc);

std::uint32_t
headerCrcOf(const MetaHeader &h)
{
    return common::crc32c(&h, kHeaderCrcSpan);
}

std::uint32_t
entryCrcOf(const MetaEntry &e)
{
    return common::crc32c(&e, kEntryCrcSpan);
}

bool
headerValid(const MetaHeader &h, std::uint64_t page_count,
            std::uint64_t page_size)
{
    return h.magic == MetaSidecar::kMagic &&
           h.version == MetaSidecar::kVersion &&
           h.pageCount == page_count && h.pageSize == page_size &&
           h.headerCrc == headerCrcOf(h);
}

} // namespace

MetaSidecar::MetaSidecar(int fd, std::uint64_t page_count,
                         std::uint64_t page_size)
    : fd_(fd),
      pageCount_(page_count),
      pageSize_(page_size),
      shadow_(new Shadow[page_count]),
      pending_(new std::atomic<std::uint64_t>[(page_count + 63) / 64]),
      snapshot_(new std::uint64_t[(page_count + 63) / 64]),
      words_((page_count + 63) / 64)
{
    for (std::uint64_t w = 0; w < words_; ++w)
        pending_[w].store(0, std::memory_order_relaxed);
}

MetaSidecar::~MetaSidecar()
{
    if (fd_ >= 0)
        ::close(fd_);
}

std::unique_ptr<MetaSidecar>
MetaSidecar::create(const std::string &path, std::uint64_t page_count,
                    std::uint64_t page_size)
{
    const int fd =
        ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        fatal("cannot create sidecar '", path,
              "': ", std::strerror(errno));
    const std::uint64_t bytes =
        kEntriesOffset + page_count * sizeof(MetaEntry);
    if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0)
        fatal("sidecar ftruncate failed: ", std::strerror(errno));

    auto sidecar = std::unique_ptr<MetaSidecar>(
        new MetaSidecar(fd, page_count, page_size));
    if (const int error = sidecar->seal(0, 0); error != 0)
        fatal("initial sidecar seal failed: ",
              std::strerror(error));
    return sidecar;
}

std::unique_ptr<MetaSidecar>
MetaSidecar::open(const std::string &path, std::uint64_t page_count,
                  std::uint64_t page_size)
{
    const int fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0)
        return nullptr;

    // Highest valid generation wins; a torn seal leaves the other
    // slot intact.
    MetaHeader best;
    bool found = false;
    for (int slot = 0; slot < 2; ++slot) {
        MetaHeader h;
        if (preadFullyWithRetry(fd, &h, sizeof(h),
                                kSlotOffset[slot]) != 0)
            continue;
        if (!headerValid(h, page_count, page_size))
            continue;
        if (!found || h.generation > best.generation) {
            best = h;
            found = true;
        }
    }
    if (!found) {
        ::close(fd);
        return nullptr;
    }

    auto sidecar = std::unique_ptr<MetaSidecar>(
        new MetaSidecar(fd, page_count, page_size));
    sidecar->generation_ = best.generation;
    sidecar->lastSealedEpoch_ = best.lastSealedEpoch;
    sidecar->lastSealedRunId_ = best.lastSealedRunId;
    sidecar->loadStats_.generation = best.generation;

    std::vector<MetaEntry> entries(page_count);
    if (preadFullyWithRetry(fd, entries.data(),
                            page_count * sizeof(MetaEntry),
                            kEntriesOffset) != 0) {
        // Unreadable entry table: recover as if every entry were
        // torn — pages verify as "no commit record" (unverified).
        sidecar->loadStats_.badEntries = page_count;
        return sidecar;
    }
    for (std::uint64_t p = 0; p < page_count; ++p) {
        const MetaEntry &e = entries[p];
        if (e.flags == kInvalid && e.crc == 0 && e.epoch == 0 &&
            e.runId == 0 && e.storedLen == 0 && e.entryCrc == 0)
            continue; // never written — legitimately invalid
        if (e.entryCrc != entryCrcOf(e) ||
            (e.flags != kPending && e.flags != kCommitted)) {
            ++sidecar->loadStats_.badEntries;
            continue;
        }
        Shadow &s = sidecar->shadow_[p];
        s.crc.store(e.crc, std::memory_order_relaxed);
        s.epoch.store(e.epoch, std::memory_order_relaxed);
        s.runId.store(e.runId, std::memory_order_relaxed);
        s.storedLen.store(e.storedLen, std::memory_order_relaxed);
        s.flags.store(e.flags, std::memory_order_relaxed);
    }
    return sidecar;
}

int
MetaSidecar::writeEntry(PageNum page, std::uint32_t crc,
                        std::uint32_t flags, std::uint64_t epoch,
                        std::uint64_t run_id,
                        std::uint32_t stored_len)
{
    MetaEntry e;
    e.crc = crc;
    e.flags = flags;
    e.epoch = epoch;
    e.runId = run_id;
    e.storedLen = stored_len;
    e.entryCrc = entryCrcOf(e);
    return pwriteFullyWithRetry(
        fd_, &e, sizeof(e), kEntriesOffset + page * sizeof(MetaEntry));
}

void
MetaSidecar::recordPage(PageNum page, std::uint32_t crc,
                        std::uint64_t epoch, std::uint64_t run_id,
                        std::uint32_t stored_len)
{
    Shadow &s = shadow_[page];
    s.crc.store(crc, std::memory_order_relaxed);
    s.epoch.store(epoch, std::memory_order_relaxed);
    s.runId.store(run_id, std::memory_order_relaxed);
    s.storedLen.store(stored_len, std::memory_order_relaxed);
    s.flags.store(kPending, std::memory_order_relaxed);
    if (writeEntry(page, crc, kPending, epoch, run_id, stored_len) !=
        0)
        entryWriteErrors_.fetch_add(1, std::memory_order_relaxed);
}

void
MetaSidecar::markWritten(PageNum page)
{
    // Release pairs with commitPending's acquire exchange: a
    // snapshotted bit implies the shadow values and the data pwrite
    // that preceded this call are visible to the promoter.
    pending_[page / 64].fetch_or(1ULL << (page % 64),
                                 std::memory_order_release);
}

int
MetaSidecar::commitPending(int data_fd)
{
    if (promoting_.exchange(true, std::memory_order_acquire)) {
        // Another barrier is promoting.  Our own contract — the data
        // is durable when we return — still holds; our pages simply
        // stay PENDING until the next barrier, which is safe because
        // only COMMITTED claims durability.
        return fdatasyncWithRetry(data_fd);
    }

    // Snapshot BEFORE the data sync: every snapshotted bit's data
    // write completed before its markWritten(), so the fdatasync
    // below covers it — a promoted entry can never outrun its data.
    bool any = false;
    for (std::uint64_t w = 0; w < words_; ++w) {
        snapshot_[w] = pending_[w].exchange(
            0, std::memory_order_acq_rel);
        any |= snapshot_[w] != 0;
    }

    int error = fdatasyncWithRetry(data_fd);
    if (error != 0) {
        // Data durability failed: hand the pages back for the next
        // barrier and report.
        for (std::uint64_t w = 0; w < words_; ++w)
            if (snapshot_[w])
                pending_[w].fetch_or(snapshot_[w],
                                     std::memory_order_relaxed);
        promoting_.store(false, std::memory_order_release);
        return error;
    }
    if (!any) {
        promoting_.store(false, std::memory_order_release);
        return 0;
    }

    // Promote: rewrite the snapshotted entries as COMMITTED.  The
    // shadow may already describe a NEWER flush of the same page
    // (re-dirtied after our snapshot); skipping when the CRC moved
    // keeps the committed record tied to the values our fdatasync
    // actually covered — the newer flush re-promotes at its own
    // barrier (its markWritten re-set the bit).
    for (std::uint64_t w = 0; w < words_; ++w) {
        std::uint64_t word = snapshot_[w];
        while (word) {
            const PageNum page =
                w * 64 + static_cast<unsigned>(__builtin_ctzll(word));
            word &= word - 1;
            Shadow &s = shadow_[page];
            const std::uint32_t crc =
                s.crc.load(std::memory_order_acquire);
            const std::uint64_t epoch =
                s.epoch.load(std::memory_order_relaxed);
            const std::uint64_t run_id =
                s.runId.load(std::memory_order_relaxed);
            const std::uint32_t stored_len =
                s.storedLen.load(std::memory_order_relaxed);
            if (const int e = writeEntry(page, crc, kCommitted,
                                         epoch, run_id, stored_len);
                e != 0) {
                if (error == 0)
                    error = e;
                continue;
            }
            s.flags.store(kCommitted, std::memory_order_release);
        }
    }
    if (const int e = fdatasyncWithRetry(fd_); e != 0 && error == 0)
        error = e;
    promoting_.store(false, std::memory_order_release);
    return error;
}

int
MetaSidecar::seal(std::uint64_t epoch, std::uint64_t run_id)
{
    MetaHeader h;
    h.magic = kMagic;
    h.version = kVersion;
    h.generation = generation_ + 1;
    h.lastSealedEpoch = epoch;
    h.lastSealedRunId = run_id;
    h.pageCount = pageCount_;
    h.pageSize = pageSize_;
    h.headerCrc = headerCrcOf(h);

    const std::uint64_t off = kSlotOffset[h.generation % 2];
    if (const int error =
            pwriteFullyWithRetry(fd_, &h, sizeof(h), off);
        error != 0)
        return error;
    if (const int error = fdatasyncWithRetry(fd_); error != 0)
        return error;
    generation_ = h.generation;
    lastSealedEpoch_ = epoch;
    lastSealedRunId_ = run_id;
    return 0;
}

MetaEntry
MetaSidecar::entry(PageNum page) const
{
    const Shadow &s = shadow_[page];
    MetaEntry e;
    e.flags = s.flags.load(std::memory_order_acquire);
    e.crc = s.crc.load(std::memory_order_relaxed);
    e.epoch = s.epoch.load(std::memory_order_relaxed);
    e.runId = s.runId.load(std::memory_order_relaxed);
    e.storedLen = s.storedLen.load(std::memory_order_relaxed);
    return e;
}

} // namespace viyojit::runtime
