/**
 * @file
 * Real-memory Viyojit runtime (the paper's 1,500-line shared
 * library, section 5).
 *
 * An NvRegion is an mmap'd area whose pages start write-protected;
 * SIGSEGV delivers first writes to the same DirtyBudgetController the
 * simulator uses; a background epoch thread samples update recency;
 * pages are persisted to a backing file with pwrite/fdatasync.
 *
 * Substitution note: the paper reads and clears hardware PTE dirty
 * bits through a kernel module.  Userspace cannot do that portably,
 * so the epoch scan re-write-protects dirty pages instead — a page
 * that faults again before the next scan was "dirty" in that epoch.
 * This preserves the recency signal exactly, at the cost of one
 * extra fault per page per epoch of activity, which is the overhead
 * the paper's MMU discussion (section 5.4) also attributes to
 * software-only implementations.
 */

#ifndef VIYOJIT_RUNTIME_REGION_HH
#define VIYOJIT_RUNTIME_REGION_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/types.hh"
#include "core/config.hh"
#include "core/controller.hh"
#include "core/paging_backend.hh"

namespace viyojit::runtime
{

/**
 * fdatasync with bounded retry: EINTR/EAGAIN are retried up to
 * `attempts` times; any other errno — or retry exhaustion — is
 * returned to the caller (0 on success).  The runtime escalates a
 * nonzero return to fatal(); tests call this directly to assert the
 * error path.
 */
int fdatasyncWithRetry(int fd, unsigned attempts = 8);

/**
 * pwrite the whole buffer with bounded retry on EINTR/EAGAIN and on
 * short writes.  Returns 0 on success or the last errno (EIO for a
 * persistent short write).
 */
int pwriteFullyWithRetry(int fd, const void *buf, std::uint64_t len,
                         std::uint64_t offset, unsigned attempts = 8);

/** Runtime tunables. */
struct RuntimeConfig
{
    /** Dirty budget in pages (required, >= 1). */
    std::uint64_t dirtyBudgetPages = 0;

    /** Epoch length in host microseconds (paper: 1000). */
    std::uint64_t epochMicros = 1000;

    unsigned historyEpochs = 64;
    double pressureWeightCurrent = 0.75;
    unsigned maxOutstandingIos = 16;

    /** Start the background epoch thread in create()/recover(). */
    bool startEpochThread = true;

    /**
     * Run the epoch scan as a linear sweep over every page instead of
     * the bitmap-directed walk over the writable (written-this-epoch)
     * set, and keep the controller's legacy epoch paths.  Mirrors
     * core::ViyojitConfig::legacyEpochScan; for A/B validation.
     */
    bool legacyEpochScan = false;
};

/** Runtime statistics snapshot. */
struct RegionStats
{
    std::uint64_t writeFaults = 0;
    std::uint64_t blockedEvictions = 0;
    std::uint64_t proactiveCopies = 0;
    std::uint64_t epochs = 0;
    std::uint64_t dirtyPages = 0;
    std::uint64_t bytesPersisted = 0;
};

/** A battery-bounded non-volatile memory region over real pages. */
class NvRegion
{
  public:
    /**
     * Create a region of `bytes` backed by `backing_path` (created or
     * truncated).  Memory starts zeroed and clean.
     */
    static std::unique_ptr<NvRegion> create(
        const std::string &backing_path, std::uint64_t bytes,
        const RuntimeConfig &config);

    /**
     * Recover a region from an existing backing file: contents are
     * loaded back into memory and every page starts clean.
     */
    static std::unique_ptr<NvRegion> recover(
        const std::string &backing_path, const RuntimeConfig &config);

    ~NvRegion();

    NvRegion(const NvRegion &) = delete;
    NvRegion &operator=(const NvRegion &) = delete;

    /** Base of the usable memory. */
    void *base() { return mem_; }
    const void *base() const { return mem_; }

    std::uint64_t size() const { return bytes_; }
    std::uint64_t pageCount() const { return pageCount_; }
    std::uint64_t pageSize() const { return pageSize_; }

    /** Run one epoch boundary synchronously (tests / manual mode). */
    void epochTick();

    /**
     * Emergency flush: persist every dirty page and fsync.
     * @return pages flushed.
     */
    std::uint64_t flushAll();

    /** Retune the dirty budget at runtime. */
    void setDirtyBudget(std::uint64_t pages);

    RegionStats stats() const;

    /** Handle a fault at `addr` if it belongs to this region. */
    bool handleFault(void *addr);

  private:
    class FileBackend;

    NvRegion(const std::string &backing_path, std::uint64_t bytes,
             const RuntimeConfig &config, bool recover_contents);

    void startEpochThread();
    void stopEpochThread();

    RuntimeConfig config_;
    std::uint64_t pageSize_;
    std::uint64_t pageCount_;
    std::uint64_t bytes_;
    char *mem_ = nullptr;
    int fd_ = -1;

    std::unique_ptr<FileBackend> backend_;
    std::unique_ptr<core::DirtyBudgetController> controller_;

    /** Serializes controller access across app/epoch/IO threads. */
    mutable std::recursive_mutex lock_;

    std::thread epochThread_;
    std::atomic<bool> epochRunning_{false};

    std::atomic<std::uint64_t> bytesPersisted_{0};
};

} // namespace viyojit::runtime

#endif // VIYOJIT_RUNTIME_REGION_HH
