/**
 * @file
 * Real-memory Viyojit runtime (the paper's 1,500-line shared
 * library, section 5), sharded for multi-threaded applications.
 *
 * An NvRegion is an mmap'd area whose pages start write-protected;
 * SIGSEGV delivers first writes to the same DirtyBudgetController the
 * simulator uses; a background epoch thread samples update recency;
 * pages are persisted to a backing file with pwrite/fdatasync.
 *
 * Substitution note: the paper reads and clears hardware PTE dirty
 * bits through a kernel module.  Userspace cannot do that portably,
 * so the epoch scan re-write-protects dirty pages instead — a page
 * that faults again before the next scan was "dirty" in that epoch.
 * This preserves the recency signal exactly, at the cost of one
 * extra fault per page per epoch of activity, which is the overhead
 * the paper's MMU discussion (section 5.4) also attributes to
 * software-only implementations.
 *
 * Sharding.  The page space is split into power-of-two-sized
 * contiguous blocks; each shard owns a block with its own controller
 * (dirty tracker, recency buckets, victim selection), its own
 * writable bitmaps, and its own mutex, so threads writing different
 * shards fault, admit, and persist fully in parallel.  The battery's
 * single dirty budget is held in a core::BudgetPool: shards carry a
 * local quota and borrow/return batches through lock-free pool
 * operations, so the durability invariant — summed dirty pages never
 * exceed the battery budget — holds at every instant while the fault
 * fast path touches only its shard's lock.  `shards = 1` (the
 * default) bypasses the pool entirely and behaves exactly like the
 * pre-sharding runtime.
 *
 * LOCK ORDERING.  Four lock classes exist; deadlock freedom rests on
 * these rules, each encoded as a Clang Thread Safety annotation
 * (common/thread_annotations.hh) so a clang build with
 * `-Wthread-safety -Werror` rejects violations — see DESIGN.md §8
 * for the rule-by-rule annotation map:
 *
 *   1. Shard locks are peers.  No thread acquires a second shard
 *      lock while holding one, with a single exception: the coherent
 *      snapshot (stats()) acquires ALL shard locks in ascending
 *      shard order.  stats() never blocks on IO while holding them,
 *      and since every other thread holds at most one shard lock and
 *      never waits for another, the ascending sweep cannot cycle.
 *      (The dynamic all-shards sweep is beyond the static lock-set
 *      model; stats() is the runtime's one NO_THREAD_SAFETY_ANALYSIS
 *      function, covered by the TSan suites.)  Retunes
 *      (setDirtyBudget()) deliberately do NOT use this exception: a
 *      shrink can wait on copier IO, so it claws quota back one
 *      shard lock at a time under the region retune mutex — taken
 *      before any shard lock, never while holding one, which is
 *      Shard::lock's ACQUIRED_AFTER(owner->retuneLock_).
 *   2. The budget pool is lock-free on the fault path (CAS
 *      borrow/deposit); its retune mutex is taken only by
 *      total-changing operations (grow/confiscate/destroy, each
 *      EXCLUDES(retuneLock_)) and nests inside whatever single
 *      shard lock the caller holds.
 *   3. Cross-shard quota steals lock the donor shard while holding
 *      NO other shard lock: the thief releases its own shard lock,
 *      locks one donor at a time, and deposits the clawed-back quota
 *      into the pool BEFORE unlocking the donor, so quota is never
 *      in transit outside every lock — a thread holding all shard
 *      locks always observes sum(quotas) + pool == total.
 *   4. The copier pool's queue lock is a leaf: submissions happen
 *      under a shard lock (CopierPool::submit EXCLUDES its queue
 *      lock), but copier workers never hold the queue lock while
 *      persisting or completing (completions re-acquire the owning
 *      shard's lock only).
 *
 * Shard state (controller, backend bitmaps, IO bookkeeping) is
 * GUARDED_BY/PT_GUARDED_BY the shard lock.  Condition waits go
 * through common::CondVar, whose wait() REQUIRES the annotated
 * mutex and internally adopts/releases the native handle — the
 * reason the locks wrap plain std::mutex; the runtime deliberately
 * has no recursive locking.
 */

#ifndef VIYOJIT_RUNTIME_REGION_HH
#define VIYOJIT_RUNTIME_REGION_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"
#include "common/types.hh"
#include "core/budget_pool.hh"
#include "core/config.hh"
#include "core/controller.hh"
#include "core/paging_backend.hh"

struct iovec;

namespace viyojit::runtime
{

class CopierPool;
class MetaSidecar;

/**
 * fdatasync with bounded retry: EINTR/EAGAIN are retried up to
 * `attempts` times; any other errno — or retry exhaustion — is
 * returned to the caller (0 on success).  The runtime escalates a
 * nonzero return to fatal(); tests call this directly to assert the
 * error path.
 */
int fdatasyncWithRetry(int fd, unsigned attempts = 8);

/**
 * pwrite the whole buffer with bounded retry on EINTR/EAGAIN and on
 * short writes.  Returns 0 on success or the last errno (EIO for a
 * persistent short write).
 */
int pwriteFullyWithRetry(int fd, const void *buf, std::uint64_t len,
                         std::uint64_t offset, unsigned attempts = 8);

/**
 * Advance an iovec array past `done` bytes already transferred:
 * fully-consumed leading entries are skipped, and the first partially
 * consumed entry has its base/len adjusted in place.  Returns the
 * index of the first incomplete entry (== `iovcnt` when `done` covers
 * the whole array).  This is the resumption arithmetic of the
 * vectored write path, split out so tests can drive the partial-write
 * cases directly.
 */
unsigned advanceIovecs(struct iovec *iov, unsigned iovcnt,
                       std::uint64_t done);

/**
 * pwritev the whole iovec array with bounded retry on EINTR/EAGAIN
 * and on short writes (resuming mid-array via advanceIovecs), and
 * transparent chunking past the IOV_MAX syscall limit.  The array is
 * clobbered as a side effect of resumption.  Returns 0 on success or
 * the last errno (EIO for a persistent short write) — same contract
 * as pwriteFullyWithRetry.
 */
int pwritevFullyWithRetry(int fd, struct iovec *iov, unsigned iovcnt,
                          std::uint64_t offset, unsigned attempts = 8);

/**
 * pread the whole buffer with bounded retry on EINTR/EAGAIN and on
 * short reads.  Hitting EOF before `len` bytes is an error (EIO):
 * recovery sizes its reads from the file, so a short image means the
 * file shrank or the device lied.  Returns 0 on success or the last
 * errno — the read-side mirror of pwriteFullyWithRetry.
 */
int preadFullyWithRetry(int fd, void *buf, std::uint64_t len,
                        std::uint64_t offset, unsigned attempts = 8);

/** Runtime tunables. */
struct RuntimeConfig
{
    /** Dirty budget in pages (required, >= 1). */
    std::uint64_t dirtyBudgetPages = 0;

    /** Epoch length in host microseconds (paper: 1000). */
    std::uint64_t epochMicros = 1000;

    unsigned historyEpochs = 64;
    double pressureWeightCurrent = 0.75;
    unsigned maxOutstandingIos = 16;

    /** Start the background epoch thread in create()/recover(). */
    bool startEpochThread = true;

    /**
     * Run the epoch scan as a linear sweep over every page instead of
     * the bitmap-directed walk over the writable (written-this-epoch)
     * set, and keep the controller's legacy epoch paths.  Mirrors
     * core::ViyojitConfig::legacyEpochScan; for A/B validation.
     */
    bool legacyEpochScan = false;

    /**
     * Page-space shards (power of two).  1 — the default — is the
     * unsharded runtime: one controller, one lock, no budget pool,
     * bit-identical behaviour to the pre-sharding code.  0 picks a
     * power of two bounded by the host's hardware concurrency, the
     * page count, and half the dirty budget.  Sharded regions need
     * `dirtyBudgetPages >= shards`.
     */
    unsigned shards = 1;

    /**
     * Background copier threads draining per-shard victim queues.
     * 0 — the default — persists pages inline on the submitting
     * thread (deterministic; matches the pre-sharding runtime).
     */
    unsigned copierThreads = 0;

    /** Pages a copier worker claims from one shard per batch. */
    unsigned copierBatchPages = 8;

    /**
     * Pages moved per borrow between a shard and the budget pool.
     * 0 picks a quarter of the initial per-shard quota.
     */
    std::uint64_t quotaBatchPages = 0;

    /**
     * Coalesce page-number-adjacent victims into one vectored write
     * (pwritev) with a group fdatasync, instead of one pwrite per
     * page.  Mirrors core::ViyojitConfig::coalesceRuns; off by
     * default so existing behaviour is bit-identical.
     */
    bool coalesceRuns = false;

    /** Longest run a single vectored write may carry. */
    unsigned maxRunPages = 16;

    /**
     * log2 pages per extent for locality-aware victim selection
     * (core::ViyojitConfig::extentShift); 0 disables.
     */
    unsigned extentShift = 0;

    /**
     * Maintain the durable metadata sidecar (`<backing>.meta`):
     * every flushed page carries a CRC32C commit record, group syncs
     * promote records to COMMITTED after the data fdatasync, and
     * recovery verifies reloaded contents against them.  Off
     * reproduces the unverified pre-sidecar runtime.
     */
    bool checksumCommits = true;

    /**
     * Pages the background scrubber verifies against the durable
     * image per epoch boundary (epoch thread only; epochTick() never
     * scrubs).  0 — the default — disables scrubbing; tests drive
     * scrubTick() directly.
     */
    std::uint64_t scrubPagesPerEpoch = 0;

    /**
     * Compress page images on the copy-out path (common/pagezip):
     * copier threads compress each victim page, ship the smaller
     * stream to the page's slot in the backing file, and record the
     * stored length in the sidecar commit record so recovery
     * decompresses before verifying the RAW-page CRC (DESIGN.md
     * §11).  Incompressible pages bypass to raw automatically.
     *
     * Requires checksumCommits (the stored length lives in the
     * commit record — without it a compressed slot is
     * indistinguishable from raw data at recovery) and
     * copierThreads > 0 (inline persists run on the SIGSEGV
     * admission path, which must never reach the codec —
     * tools/sigsafe_lint.py hard-fails if it does); create() rejects
     * other combinations.  Fault-path blocking persists (synchronous
     * evictions, scrub repairs) still write raw, which is safe: a
     * raw write covers the whole slot and records storedLen = 0.
     */
    bool compressFlush = false;

    /**
     * Shed fault-path blocking evictions to the copier pipeline
     * (core::ViyojitConfig::shedBlockedEvictions): a budget-limited
     * fault fills the async pipe with victims and blocks only until
     * the FIRST completion, instead of paying one synchronous device
     * write per eviction.  Enabled by default but effective only
     * when copierThreads > 0 — with inline persists the async submit
     * degenerates to the same blocking write, so the runtime maps it
     * to false and copiers-off regions stay bit-identical to the
     * pre-shedding runtime (including stats).
     */
    bool shedBlockedEvictions = true;

    /**
     * Latency-SLO admission headroom in pages per shard
     * (core::ViyojitConfig::sloHeadroomPages, 0 = off): proactive
     * copying keeps at least this many admission slots free even
     * when the pressure EWMA lags, bounding fault-path p99 during
     * bursts and retunes.  Clamped to half a shard's fair share at
     * watermark derivation.
     */
    std::uint64_t sloHeadroomPages = 0;
};

/** Runtime statistics snapshot (coherent across shards). */
struct RegionStats
{
    std::uint64_t writeFaults = 0;
    std::uint64_t blockedEvictions = 0;
    std::uint64_t proactiveCopies = 0;
    std::uint64_t epochs = 0;
    std::uint64_t dirtyPages = 0;
    std::uint64_t bytesPersisted = 0;

    /** Shards in the region (1 = unsharded). */
    std::uint64_t shards = 1;

    /** Quota batches borrowed from / returned to the budget pool. */
    std::uint64_t quotaBorrowedPages = 0;
    std::uint64_t quotaReturnedPages = 0;

    /** Cross-shard quota steals (fault path found the pool dry). */
    std::uint64_t quotaSteals = 0;

    /** Hysteretic quota migration: batched refills taken when spare
     *  quota crossed the low watermark, and proactive donations made
     *  above the high watermark at epoch boundaries.  Healthy
     *  multicore runs migrate through these; steals are the rare
     *  slow path. */
    std::uint64_t watermarkRefills = 0;
    std::uint64_t proactiveDonations = 0;

    /** Budget-limited faults shed to the async copier pipeline
     *  instead of paying a synchronous device write. */
    std::uint64_t shedEvictions = 0;

    /** Fault-path admission retries that entered the capped
     *  exponential backoff, and faults that exhausted a full backoff
     *  ladder without admitting (starvation signal). */
    std::uint64_t backoffRetries = 0;
    std::uint64_t starvedFaults = 0;

    /** Coalesced run IOs submitted and the pages they carried. */
    std::uint64_t runSubmits = 0;
    std::uint64_t runPagesCoalesced = 0;

    /** Runs degraded to per-page jobs by a backlogged copier ring. */
    std::uint64_t runFallbacks = 0;

    /** Unassigned pages in the budget pool (0 when unsharded). */
    std::uint64_t poolAvailablePages = 0;

    /** Summed per-shard quotas plus the pool (== battery budget). */
    std::uint64_t dirtyBudgetPages = 0;

    /** Scrub progress: durable pages checked against their commit
     *  records, mismatches found, and repairs (re-persisted from the
     *  still-clean DRAM copy). */
    std::uint64_t scrubScanned = 0;
    std::uint64_t scrubSkippedBusy = 0;
    std::uint64_t scrubMismatches = 0;
    std::uint64_t scrubRepaired = 0;

    /** Sidecar commit-record writes that failed on the flush path
     *  (degrades recovery classification, never durability). */
    std::uint64_t metaEntryWriteErrors = 0;

    /** Copy-out compression (compressFlush): pages shipped as a
     *  pagezip stream, pages the codec bypassed to raw, and the
     *  bytes the compressed path actually put on the wire
     *  (bytesPersisted stays in RAW bytes — the ratio between the
     *  two is the achieved compression). */
    std::uint64_t compressedPersists = 0;
    std::uint64_t compressBypasses = 0;
    std::uint64_t storedBytesPersisted = 0;

    /** Per-shard migration/backoff counters (empty when unsharded):
     *  where the aggregates above came from, so a skewed workload's
     *  hot shard is visible instead of averaged away. */
    struct ShardCounters
    {
        std::uint64_t steals = 0;
        std::uint64_t watermarkRefills = 0;
        std::uint64_t proactiveDonations = 0;
        std::uint64_t backoffRetries = 0;
    };
    std::vector<ShardCounters> perShard;
};

/** What recovery found while reloading and verifying the image. */
struct RuntimeRecoveryReport
{
    /** A valid sidecar header was found and used for verification.
     *  False = legacy image: contents load unverified. */
    bool sidecarFound = false;

    /** Pages whose content matched their commit record. */
    std::uint64_t verifiedPages = 0;

    /** Pages with no (valid) commit record — nothing to check. */
    std::uint64_t unverifiedPages = 0;

    /** Pages whose content failed their commit record's CRC. */
    std::uint64_t checksumMismatches = 0;

    /** Mismatch classes (see DESIGN.md §10): torn flush tail,
     *  data-ahead-of-sealed-metadata, silent media corruption. */
    std::uint64_t tornRunPages = 0;
    std::uint64_t staleEpochPages = 0;
    std::uint64_t silentCorruptPages = 0;

    /** Sidecar entries whose own CRC failed (torn metadata). */
    std::uint64_t badEntries = 0;

    /** Pages whose durable image was a pagezip stream that decoded
     *  and verified cleanly (a subset of verifiedPages). */
    std::uint64_t compressedPages = 0;

    /**
     * Pages settled as known-bad: unreadable after bounded retries
     * (zero-filled) or failed checksum verification (content kept,
     * but untrustworthy).  The caller must not trust these pages.
     */
    std::vector<PageNum> quarantined;
};

/** A battery-bounded non-volatile memory region over real pages. */
class NvRegion
{
  public:
    /**
     * Create a region of `bytes` backed by `backing_path` (created or
     * truncated).  Memory starts zeroed and clean.
     */
    static std::unique_ptr<NvRegion> create(
        const std::string &backing_path, std::uint64_t bytes,
        const RuntimeConfig &config);

    /**
     * Recover a region from an existing backing file: contents are
     * loaded back into memory and every page starts clean.
     */
    static std::unique_ptr<NvRegion> recover(
        const std::string &backing_path, const RuntimeConfig &config);

    ~NvRegion();

    NvRegion(const NvRegion &) = delete;
    NvRegion &operator=(const NvRegion &) = delete;

    /** Base of the usable memory. */
    void *base() { return mem_; }
    const void *base() const { return mem_; }

    std::uint64_t size() const { return bytes_; }
    std::uint64_t pageCount() const { return pageCount_; }
    std::uint64_t pageSize() const { return pageSize_; }

    /** Shards the page space is split into. */
    unsigned shardCount() const
    {
        return static_cast<unsigned>(shards_.size());
    }

    /** Run one epoch boundary synchronously (tests / manual mode). */
    void epochTick();

    /**
     * Emergency flush: persist every dirty page and fsync.
     * @return pages flushed.
     */
    std::uint64_t flushAll();

    /**
     * Retune the dirty budget at runtime.  Sharded regions shrink
     * incrementally — one shard lock at a time under the retune
     * mutex, destroying reclaimed quota so the pool total never
     * rises transiently (evicting synchronously where a shard's
     * dirty count no longer fits its shrunken quota).  On return the
     * pool total equals `pages` and the summed dirty count fits it.
     */
    void setDirtyBudget(std::uint64_t pages) EXCLUDES(retuneLock_);

    /**
     * Coherent snapshot across shards.  Acquires every shard lock in
     * ascending order (lock-ordering rule 1's one exception) — a
     * dynamic lock set the static analysis cannot model, so the
     * implementation is NO_THREAD_SAFETY_ANALYSIS; the TSan CI
     * suites cover it.
     */
    RegionStats stats() const;

    /** Handle a fault at `addr` if it belongs to this region. */
    bool handleFault(void *addr);

    /** True when the durable metadata sidecar is active. */
    bool hasSidecar() const { return meta_ != nullptr; }

    /** What recover() found (empty report for create()). */
    const RuntimeRecoveryReport &recoveryReport() const
    {
        return recoveryReport_;
    }

    /**
     * One pass of the background scrubber: verify up to `max_pages`
     * settled (clean, no IO in flight) committed pages against the
     * durable image and re-persist any whose durable copy diverged —
     * repairing silent corruption from the still-clean DRAM copy.
     * Budget-aware: shards under dirty pressure are skipped.  The
     * epoch thread drives this when scrubPagesPerEpoch > 0; tests
     * call it directly.
     */
    void scrubTick(std::uint64_t max_pages);

  private:
    class ShardBackend;
    struct Shard;

    NvRegion(const std::string &backing_path, std::uint64_t bytes,
             const RuntimeConfig &config, bool recover_contents);

    void startEpochThread();
    void stopEpochThread();

    /**
     * Reload the image from the backing file: chunked bulk reads
     * with bounded retry, falling back page-by-page on failure and
     * quarantining (zero-filling) pages that stay unreadable.
     */
    void loadImage();

    /** Verify the reloaded image against the sidecar and classify
     *  mismatches into recoveryReport_. */
    void verifyImage();

    unsigned shardOf(PageNum page) const
    {
        return static_cast<unsigned>(page >> ppsShift_);
    }

    /**
     * Fault-path quota steal for `thief`: called with NO shard lock
     * held; locks one donor shard at a time (lock-ordering rule 3)
     * and moves SPARE quota (slack above a donor's dirty count —
     * never evicting donor pages) into the pool for the thief's
     * retry to borrow.  Returns false when no sibling had any to
     * give, signalling the thief to evict locally instead.
     *
     * With hysteretic watermark migration this is the rare slow
     * path: donors advertise spare above their mid watermark in a
     * lock-free gauge (DirtyBudgetController::donatableQuotaGauge),
     * and the sweep skips donors whose gauge reads zero WITHOUT
     * taking their lock — a stale gauge costs one wasted lock
     * acquisition or one skipped donor, never correctness, because
     * the authoritative value is re-read under the donor's lock
     * before any quota moves.  In-band spare is never stolen (it
     * would cascade into compensating refills); when every sibling
     * is in-band the thief evicts locally instead.
     */
    bool stealQuotaFor(unsigned thief);

    /**
     * Re-derive every shard's quota watermarks and SLO headroom from
     * a retuned pool total (fair share = total / shards).  Called
     * under the retune mutex, locking one shard at a time — no
     * all-shards lock set, no new lock-order edges.
     */
    void rederiveWatermarks(std::uint64_t total_pages);

    RuntimeConfig config_;
    std::uint64_t pageSize_;
    std::uint64_t pageCount_;
    std::uint64_t bytes_;
    char *mem_ = nullptr;
    int fd_ = -1;

    /** log2 of pages per shard (shard index = page >> ppsShift_). */
    unsigned ppsShift_ = 0;

    std::vector<std::unique_ptr<Shard>> shards_;

    /** Global battery budget; null when unsharded. */
    std::unique_ptr<core::BudgetPool> pool_;

    /** Background copiers; null when copierThreads == 0. */
    std::unique_ptr<CopierPool> copiers_;

    std::uint64_t quotaBatch_ = 1;

    std::thread epochThread_;
    std::atomic<bool> epochRunning_{false};

    std::atomic<std::uint64_t> bytesPersisted_{0};
    std::atomic<std::uint64_t> quotaSteals_{0};
    std::atomic<std::uint64_t> runFallbacks_{0};

    /** Compressed copy-out accounting (copier threads only). */
    std::atomic<std::uint64_t> compressedPersists_{0};
    std::atomic<std::uint64_t> compressBypasses_{0};
    std::atomic<std::uint64_t> storedBytesPersisted_{0};

    /** Record one page shipped by the compressed persist path
     *  (stored == 0 means the codec bypassed to raw). */
    void noteCompressedShip(std::uint64_t stored, std::uint64_t raw)
    {
        if (stored != 0) {
            compressedPersists_.fetch_add(
                1, std::memory_order_relaxed);
            storedBytesPersisted_.fetch_add(
                stored, std::memory_order_relaxed);
        } else {
            compressBypasses_.fetch_add(1,
                                        std::memory_order_relaxed);
            storedBytesPersisted_.fetch_add(
                raw, std::memory_order_relaxed);
        }
    }

    /** Durable commit-record sidecar; null when checksumCommits is
     *  off.  Its fault-path interface is lock-free, so persist paths
     *  use it without extra synchronization. */
    std::unique_ptr<MetaSidecar> meta_;

    RuntimeRecoveryReport recoveryReport_;

    /** Flush epoch stamped into commit records; advances at each
     *  epoch boundary and seeds from the recovered seal. */
    std::atomic<std::uint64_t> flushEpoch_{1};

    /** Id handed to each persist submission (runs share one). */
    std::atomic<std::uint64_t> nextRunId_{1};

    /** Background scrub state (cursor is epoch-thread-only). */
    PageNum scrubCursor_ = 0;
    std::atomic<std::uint64_t> scrubScanned_{0};
    std::atomic<std::uint64_t> scrubSkippedBusy_{0};
    std::atomic<std::uint64_t> scrubMismatches_{0};
    std::atomic<std::uint64_t> scrubRepaired_{0};

    /**
     * Serializes whole-region retunes (lock-ordering rule 1: taken
     * before any shard lock, never while holding one — each shard's
     * lock declares ACQUIRED_AFTER this mutex).
     */
    common::Mutex retuneLock_;
};

} // namespace viyojit::runtime

#endif // VIYOJIT_RUNTIME_REGION_HH
