/**
 * @file
 * Process-wide SIGSEGV dispatch for NvRegion write faults.
 *
 * The handler routes faults whose address falls inside a registered
 * region to that region; anything else is re-raised with the default
 * disposition so genuine crashes still crash.
 */

#ifndef VIYOJIT_RUNTIME_FAULT_DISPATCH_HH
#define VIYOJIT_RUNTIME_FAULT_DISPATCH_HH

namespace viyojit::runtime
{

class NvRegion;

/** Install the SIGSEGV handler (idempotent) and add a region. */
void registerRegion(NvRegion *region, void *base,
                    unsigned long long bytes);

/** Remove a region from dispatch. */
void unregisterRegion(NvRegion *region);

} // namespace viyojit::runtime

#endif // VIYOJIT_RUNTIME_FAULT_DISPATCH_HH
