/**
 * @file
 * Process-wide SIGSEGV dispatch for NvRegion write faults.
 *
 * The handler routes faults whose address falls inside a registered
 * region to that region; anything else is re-raised with the default
 * disposition so genuine crashes still crash.
 */

#ifndef VIYOJIT_RUNTIME_FAULT_DISPATCH_HH
#define VIYOJIT_RUNTIME_FAULT_DISPATCH_HH

namespace viyojit::runtime
{

class NvRegion;

/**
 * Size of the per-thread alternate signal stack the runtime installs
 * for fault handling (sigaltstack + SA_ONSTACK).
 *
 * This is the worst-case envelope the admission path may consume:
 * tools/pathlint's stack-bound contract computes the deepest
 * frame chain from segvHandler out of `-fstack-usage` data and fails
 * CI when it no longer fits under this constant minus the margin
 * declared in tools/pathlint_contracts.ini (methodology in
 * DESIGN.md §15).  The linter reads the constant from this very
 * initializer, so the gate cannot drift from the installed size.
 *
 * Threads that never call ensureFaultStackForThisThread() take the
 * handler on their regular stack (the kernel falls back when no alt
 * stack is registered); the bound still applies, against a far
 * larger stack.  The alt stack is the minimal guaranteed envelope —
 * and what makes the last-gasp path survive a faulting thread that
 * was itself near stack exhaustion.
 */
inline constexpr unsigned long long kFaultStackBytes = 64ULL * 1024;

/**
 * Install this thread's alternate fault stack (idempotent; respects
 * a pre-existing application sigaltstack).  Called automatically by
 * registerRegion for the registering thread and by the runtime's own
 * threads (epoch, copiers); application threads that fault into
 * regions may call it themselves to get the bounded-stack guarantee.
 */
void ensureFaultStackForThisThread();

/** Install the SIGSEGV handler (idempotent) and add a region. */
void registerRegion(NvRegion *region, void *base,
                    unsigned long long bytes);

/** Remove a region from dispatch. */
void unregisterRegion(NvRegion *region);

} // namespace viyojit::runtime

#endif // VIYOJIT_RUNTIME_FAULT_DISPATCH_HH
