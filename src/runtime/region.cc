#include "runtime/region.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/logging.hh"
#include "runtime/fault_dispatch.hh"

namespace viyojit::runtime
{

int
fdatasyncWithRetry(int fd, unsigned attempts)
{
    int error = 0;
    for (unsigned attempt = 0; attempt < attempts; ++attempt) {
        if (::fdatasync(fd) == 0)
            return 0;
        error = errno;
        if (error != EINTR && error != EAGAIN)
            return error;
    }
    return error;
}

int
pwriteFullyWithRetry(int fd, const void *buf, std::uint64_t len,
                     std::uint64_t offset, unsigned attempts)
{
    const char *src = static_cast<const char *>(buf);
    std::uint64_t written = 0;
    unsigned failures = 0;
    while (written < len) {
        const ssize_t n =
            ::pwrite(fd, src + written, len - written,
                     static_cast<off_t>(offset + written));
        if (n > 0) {
            written += static_cast<std::uint64_t>(n);
            continue;
        }
        const int error = n < 0 ? errno : EIO;
        if (error != EINTR && error != EAGAIN && n < 0)
            return error;
        if (++failures >= attempts)
            return error;
    }
    return 0;
}

/**
 * PagingBackend over mprotect and a backing file.
 *
 * Page copies are performed inline (pwrite) — the "async" interface
 * degenerates to immediate completion.  The paper's 16-deep IO queue
 * is a throughput optimization on its Azure SSD; correctness (the
 * protect-before-copy rule, exact dirty accounting) is identical, and
 * the simulated substrate models the queued-IO behaviour for the
 * performance studies.
 */
class NvRegion::FileBackend : public core::PagingBackend
{
  public:
    FileBackend(NvRegion &region)
        : region_(region),
          writableWords_((region.pageCount_ + 63) / 64, 0),
          summary_((writableWords_.size() + 63) / 64, 0)
    {}

    std::uint64_t pageCount() const override
    {
        return region_.pageCount_;
    }

    std::uint64_t pageSize() const override
    {
        return region_.pageSize_;
    }

    void
    protectPage(PageNum page) override
    {
        mprotectRange(page, 1, PROT_READ);
        setWritableBit(page, false);
    }

    void
    unprotectPage(PageNum page) override
    {
        mprotectRange(page, 1, PROT_READ | PROT_WRITE);
        setWritableBit(page, true);
    }

    void
    scanAndClearDirty(bool flush_tlb,
                      FunctionRef<void(PageNum, bool)> visitor) override
    {
        // Userspace dirty-bit emulation: every epoch re-protects the
        // writable (== written-this-epoch) pages, so the next write
        // faults and refreshes recency.  `flush_tlb` is implicit in
        // mprotect (the kernel shoots down stale TLB entries).
        (void)flush_tlb;
        if (region_.config_.legacyEpochScan) {
            scanLinear(visitor);
            return;
        }
        // Two-level bitmap walk: only words (and summary words) with
        // a writable page in them are touched, so a mostly-clean
        // region scans in O(dirty), not O(pageCount).
        PageNum run_start = invalidPage;
        PageNum run_end = 0;
        for (std::uint64_t s = 0; s < summary_.size(); ++s) {
            std::uint64_t sword = summary_[s];
            if (!sword)
                continue;
            summary_[s] = 0;
            while (sword) {
                const std::uint64_t w =
                    s * 64 + static_cast<unsigned>(
                                 std::countr_zero(sword));
                sword &= sword - 1;
                std::uint64_t word = writableWords_[w];
                writableWords_[w] = 0;
                while (word) {
                    const PageNum p =
                        w * 64 + static_cast<unsigned>(
                                     std::countr_zero(word));
                    word &= word - 1;
                    visitor(p, true);
                    if (run_start != invalidPage && p != run_end) {
                        mprotectRange(run_start,
                                      run_end - run_start, PROT_READ);
                        run_start = invalidPage;
                    }
                    if (run_start == invalidPage)
                        run_start = p;
                    run_end = p + 1;
                }
            }
        }
        if (run_start != invalidPage)
            mprotectRange(run_start, run_end - run_start, PROT_READ);
    }

    void
    persistPageAsync(PageNum page,
                     std::function<void()> on_complete) override
    {
        persistPageBlocking(page);
        if (on_complete)
            on_complete();
    }

    void
    persistPageBlocking(PageNum page) override
    {
        const std::uint64_t ps = region_.pageSize_;
        const char *src = region_.mem_ + page * ps;
        const int error =
            pwriteFullyWithRetry(region_.fd_, src, ps, page * ps);
        if (error != 0)
            fatal("page persist to backing file failed after bounded "
                  "retries: ", std::strerror(error));
        region_.bytesPersisted_.fetch_add(ps,
                                          std::memory_order_relaxed);
    }

    void waitForPersist(PageNum) override {}
    void waitForAnyPersist() override {}
    unsigned outstandingIos() const override { return 0; }

  private:
    void
    setWritableBit(PageNum page, bool v)
    {
        const std::uint64_t w = page / 64;
        const std::uint64_t bit = 1ULL << (page % 64);
        if (v) {
            writableWords_[w] |= bit;
            summary_[w / 64] |= 1ULL << (w % 64);
        } else {
            writableWords_[w] &= ~bit;
            if (writableWords_[w] == 0)
                summary_[w / 64] &= ~(1ULL << (w % 64));
        }
    }

    /** Pre-optimization O(pageCount) sweep, kept for A/B studies. */
    void
    scanLinear(FunctionRef<void(PageNum, bool)> visitor)
    {
        const std::uint64_t n = region_.pageCount_;
        PageNum run_start = invalidPage;
        for (PageNum p = 0; p < n; ++p) {
            const bool writable =
                (writableWords_[p / 64] >> (p % 64)) & 1;
            if (writable) {
                visitor(p, true);
                setWritableBit(p, false);
                if (run_start == invalidPage)
                    run_start = p;
            } else if (run_start != invalidPage) {
                mprotectRange(run_start, p - run_start, PROT_READ);
                run_start = invalidPage;
            }
        }
        if (run_start != invalidPage)
            mprotectRange(run_start, n - run_start, PROT_READ);
    }

    void
    mprotectRange(PageNum first, std::uint64_t pages, int prot)
    {
        if (pages == 0)
            return;
        const std::uint64_t ps = region_.pageSize_;
        if (::mprotect(region_.mem_ + first * ps, pages * ps, prot) !=
            0) {
            panic("mprotect failed: ", std::strerror(errno));
        }
    }

    NvRegion &region_;
    std::vector<std::uint64_t> writableWords_;
    std::vector<std::uint64_t> summary_;
};

NvRegion::NvRegion(const std::string &backing_path, std::uint64_t bytes,
                   const RuntimeConfig &config, bool recover_contents)
    : config_(config)
{
    pageSize_ = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
    if (config.dirtyBudgetPages == 0)
        fatal("runtime requires a dirty budget of at least one page");

    const int flags = recover_contents ? O_RDWR : (O_RDWR | O_CREAT |
                                                   O_TRUNC);
    fd_ = ::open(backing_path.c_str(), flags, 0644);
    if (fd_ < 0)
        fatal("cannot open backing file '", backing_path,
              "': ", std::strerror(errno));

    if (recover_contents) {
        struct stat st;
        if (::fstat(fd_, &st) != 0)
            fatal("fstat failed: ", std::strerror(errno));
        bytes_ = static_cast<std::uint64_t>(st.st_size);
        if (bytes_ == 0)
            fatal("backing file is empty; nothing to recover");
    } else {
        bytes_ = (bytes + pageSize_ - 1) / pageSize_ * pageSize_;
        if (::ftruncate(fd_, static_cast<off_t>(bytes_)) != 0)
            fatal("ftruncate failed: ", std::strerror(errno));
    }
    pageCount_ = bytes_ / pageSize_;

    void *mem = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED)
        fatal("mmap failed: ", std::strerror(errno));
    mem_ = static_cast<char *>(mem);

    if (recover_contents) {
        std::uint64_t done = 0;
        while (done < bytes_) {
            const ssize_t n =
                ::pread(fd_, mem_ + done, bytes_ - done,
                        static_cast<off_t>(done));
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                fatal("pread during recovery failed: ",
                      std::strerror(errno));
            }
            if (n == 0)
                break;
            done += static_cast<std::uint64_t>(n);
        }
    }

    // Fig. 6 step 1: everything starts write-protected and clean.
    if (::mprotect(mem_, bytes_, PROT_READ) != 0)
        fatal("initial mprotect failed: ", std::strerror(errno));

    core::ViyojitConfig core_config;
    core_config.pageSize = pageSize_;
    core_config.dirtyBudgetPages = config.dirtyBudgetPages;
    core_config.historyEpochs = config.historyEpochs;
    core_config.pressureWeightCurrent = config.pressureWeightCurrent;
    core_config.maxOutstandingIos = config.maxOutstandingIos;
    core_config.legacyEpochScan = config.legacyEpochScan;

    backend_ = std::make_unique<FileBackend>(*this);
    controller_ = std::make_unique<core::DirtyBudgetController>(
        *backend_, core_config);

    registerRegion(this, mem_, bytes_);
    if (config.startEpochThread)
        startEpochThread();
}

std::unique_ptr<NvRegion>
NvRegion::create(const std::string &backing_path, std::uint64_t bytes,
                 const RuntimeConfig &config)
{
    return std::unique_ptr<NvRegion>(
        new NvRegion(backing_path, bytes, config, false));
}

std::unique_ptr<NvRegion>
NvRegion::recover(const std::string &backing_path,
                  const RuntimeConfig &config)
{
    return std::unique_ptr<NvRegion>(
        new NvRegion(backing_path, 0, config, true));
}

NvRegion::~NvRegion()
{
    stopEpochThread();
    {
        std::lock_guard<std::recursive_mutex> guard(lock_);
        controller_->flushAllDirty();
        // Destructor: best effort only — cannot throw, so a sync
        // failure is reported but not escalated.
        if (const int error = fdatasyncWithRetry(fd_); error != 0)
            warn("fdatasync during region teardown failed: ",
                 std::strerror(error));
    }
    unregisterRegion(this);
    if (mem_)
        ::munmap(mem_, bytes_);
    if (fd_ >= 0)
        ::close(fd_);
}

bool
NvRegion::handleFault(void *addr)
{
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    const auto base = reinterpret_cast<std::uintptr_t>(mem_);
    if (a < base || a >= base + bytes_)
        return false;
    const PageNum page = (a - base) / pageSize_;
    std::lock_guard<std::recursive_mutex> guard(lock_);
    controller_->onWriteFault(page);
    return true;
}

void
NvRegion::epochTick()
{
    std::lock_guard<std::recursive_mutex> guard(lock_);
    controller_->onEpochBoundary();
}

std::uint64_t
NvRegion::flushAll()
{
    std::lock_guard<std::recursive_mutex> guard(lock_);
    const std::uint64_t flushed = controller_->flushAllDirty();
    if (const int error = fdatasyncWithRetry(fd_); error != 0)
        fatal("fdatasync failed after bounded retries: ",
              std::strerror(error));
    return flushed;
}

void
NvRegion::setDirtyBudget(std::uint64_t pages)
{
    std::lock_guard<std::recursive_mutex> guard(lock_);
    controller_->setDirtyBudget(pages);
}

RegionStats
NvRegion::stats() const
{
    std::lock_guard<std::recursive_mutex> guard(lock_);
    const core::ControllerStats &cs = controller_->stats();
    RegionStats out;
    out.writeFaults = cs.writeFaults;
    out.blockedEvictions = cs.blockedEvictions;
    out.proactiveCopies = cs.proactiveCopies;
    out.epochs = cs.epochs;
    out.dirtyPages = controller_->tracker().count();
    out.bytesPersisted =
        bytesPersisted_.load(std::memory_order_relaxed);
    return out;
}

void
NvRegion::startEpochThread()
{
    if (epochRunning_.exchange(true))
        return;
    epochThread_ = std::thread([this]() {
        while (epochRunning_.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(config_.epochMicros));
            std::lock_guard<std::recursive_mutex> guard(lock_);
            if (!epochRunning_.load(std::memory_order_relaxed))
                break;
            controller_->onEpochBoundary();
        }
    });
}

void
NvRegion::stopEpochThread()
{
    if (!epochRunning_.exchange(false))
        return;
    if (epochThread_.joinable())
        epochThread_.join();
}

} // namespace viyojit::runtime
