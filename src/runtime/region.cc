#include "runtime/region.hh"

#include <fcntl.h>
#include <limits.h>
#include <sched.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <unordered_set>

#include "common/checksum.hh"
#include "common/logging.hh"
#include "common/pagezip.hh"
#include "runtime/copier_pool.hh"
#include "runtime/fault_dispatch.hh"
#include "runtime/meta_sidecar.hh"

// ThreadSanitizer cannot see mprotect ordering: a page is always
// write-protected before its image is read for persistence (the
// protect-before-copy rule), so the copier's read of page contents
// can never race an application store — but the synchronization runs
// through the MMU, which TSan does not model.  The persistence read
// is therefore annotated out.
#if defined(__SANITIZE_THREAD__)
#define VIYOJIT_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define VIYOJIT_TSAN 1
#endif
#endif

#ifdef VIYOJIT_TSAN
extern "C" void AnnotateIgnoreReadsBegin(const char *, int);
extern "C" void AnnotateIgnoreReadsEnd(const char *, int);
#define VIYOJIT_IGNORE_READS_BEGIN() \
    AnnotateIgnoreReadsBegin(__FILE__, __LINE__)
#define VIYOJIT_IGNORE_READS_END() \
    AnnotateIgnoreReadsEnd(__FILE__, __LINE__)
#else
#define VIYOJIT_IGNORE_READS_BEGIN() ((void)0)
#define VIYOJIT_IGNORE_READS_END() ((void)0)
#endif

namespace viyojit::runtime
{

int
fdatasyncWithRetry(int fd, unsigned attempts)
{
    int error = 0;
    for (unsigned attempt = 0; attempt < attempts; ++attempt) {
        if (::fdatasync(fd) == 0)
            return 0;
        error = errno;
        if (error != EINTR && error != EAGAIN)
            return error;
    }
    return error;
}

int
pwriteFullyWithRetry(int fd, const void *buf, std::uint64_t len,
                     std::uint64_t offset, unsigned attempts)
{
    const char *src = static_cast<const char *>(buf);
    std::uint64_t written = 0;
    unsigned failures = 0;
    while (written < len) {
        const ssize_t n =
            ::pwrite(fd, src + written, len - written,
                     static_cast<off_t>(offset + written));
        if (n > 0) {
            written += static_cast<std::uint64_t>(n);
            continue;
        }
        const int error = n < 0 ? errno : EIO;
        if (error != EINTR && error != EAGAIN && n < 0)
            return error;
        if (++failures >= attempts)
            return error;
    }
    return 0;
}

unsigned
advanceIovecs(struct iovec *iov, unsigned iovcnt, std::uint64_t done)
{
    unsigned idx = 0;
    while (idx < iovcnt && done >= iov[idx].iov_len) {
        done -= iov[idx].iov_len;
        ++idx;
    }
    if (idx < iovcnt && done > 0) {
        iov[idx].iov_base =
            static_cast<char *>(iov[idx].iov_base) + done;
        iov[idx].iov_len -= done;
    }
    return idx;
}

int
pwritevFullyWithRetry(int fd, struct iovec *iov, unsigned iovcnt,
                      std::uint64_t offset, unsigned attempts)
{
    unsigned idx = 0;
    unsigned failures = 0;
    while (idx < iovcnt) {
        const unsigned take = std::min<unsigned>(
            iovcnt - idx, static_cast<unsigned>(IOV_MAX));
        const ssize_t n = ::pwritev(fd, iov + idx,
                                    static_cast<int>(take),
                                    static_cast<off_t>(offset));
        if (n > 0) {
            offset += static_cast<std::uint64_t>(n);
            idx += advanceIovecs(iov + idx, take,
                                 static_cast<std::uint64_t>(n));
            continue;
        }
        const int error = n < 0 ? errno : EIO;
        if (error != EINTR && error != EAGAIN && n < 0)
            return error;
        if (++failures >= attempts)
            return error;
    }
    return 0;
}

int
preadFullyWithRetry(int fd, void *buf, std::uint64_t len,
                    std::uint64_t offset, unsigned attempts)
{
    char *dst = static_cast<char *>(buf);
    std::uint64_t done = 0;
    unsigned failures = 0;
    while (done < len) {
        const ssize_t n =
            ::pread(fd, dst + done, len - done,
                    static_cast<off_t>(offset + done));
        if (n > 0) {
            done += static_cast<std::uint64_t>(n);
            continue;
        }
        // n == 0 is EOF short of `len`: the image is shorter than
        // the caller was promised — persistent, but still bounded by
        // the retry budget so a racing ftruncate cannot loop forever.
        const int error = n < 0 ? errno : EIO;
        if (error != EINTR && error != EAGAIN && n < 0)
            return error;
        if (++failures >= attempts)
            return error;
    }
    return 0;
}

/**
 * One page-space shard: a contiguous block of pages with its own
 * controller, writable bitmaps, lock, and IO completion variable.
 * Page numbers inside the backend and controller are SHARD-LOCAL
 * (0 .. pages-1); only mprotect/pwrite translate to global.
 */
struct NvRegion::Shard
{
    unsigned index = 0;
    PageNum firstPage = 0;
    std::uint64_t pages = 0;

    /** Owning region; set before the lock is first acquired. */
    NvRegion *owner = nullptr;

    /**
     * Guards the controller, the backend bitmaps, and IO state.
     * Lock-ordering rule 1: shard locks are peers and nest inside
     * the region retune mutex — declared so the analysis rejects
     * taking the retune mutex while a shard lock is held.
     */
    mutable common::Mutex lock ACQUIRED_AFTER(owner->retuneLock_);

    /** Signalled when a background copy for this shard completes. */
    common::CondVar ioCv;

    std::unique_ptr<ShardBackend> backend PT_GUARDED_BY(lock);
    std::unique_ptr<core::DirtyBudgetController> controller
        PT_GUARDED_BY(lock);

    /**
     * Lock-free view of the controller for its donatable-quota
     * gauge: the steal sweep pre-filters donors through this WITHOUT
     * the shard lock.  The pointer is written once at construction,
     * before the shard is published to the fault dispatcher, and
     * donatableQuotaGauge() is a relaxed atomic load — a stale reading
     * costs one wasted lock acquisition or one skipped donor, never
     * correctness (the authoritative spare is re-read under the
     * donor's lock before quota moves).
     */
    const core::DirtyBudgetController *gaugeView = nullptr;

    /** Fault-path migration/backoff counters, written WITHOUT the
     *  shard lock (the steal sweep and the admission backoff run
     *  lock-free), so they live here as relaxed atomics rather than
     *  in the lock-guarded ControllerStats. */
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> backoffRetries{0};
    std::atomic<std::uint64_t> starvedFaults{0};
};

/**
 * PagingBackend over mprotect and a slice of the backing file.
 *
 * With no copier pool, page copies are performed inline (pwrite) —
 * the "async" interface degenerates to immediate completion, exactly
 * like the pre-sharding runtime.  With copiers, persistPageAsync
 * enqueues a POD job (this backend is the CopierClient); the copier
 * performs the pwrite without the shard lock (the page is
 * write-protected for the duration) and runs the completion under
 * it.  Enqueueing happens on the SIGSEGV admission path, so nothing
 * here may heap-allocate in steady state (tools/sigsafe_lint.py).
 *
 * The PagingBackend entry points run under the shard lock (the
 * controller is externally synchronized by it), which the REQUIRES
 * annotations below make checkable; the CopierClient entry points
 * run on copier threads and manage the lock themselves.
 */
class NvRegion::ShardBackend : public core::PagingBackend,
                               public CopierClient
{
  public:
    ShardBackend(NvRegion &region, Shard &shard)
        : region_(region),
          shard_(shard),
          writableWords_((shard.pages + 63) / 64, 0),
          summary_((writableWords_.size() + 63) / 64, 0),
          ioPending_(shard.pages, 0)
    {}

    std::uint64_t pageCount() const override { return shard_.pages; }

    std::uint64_t pageSize() const override
    {
        return region_.pageSize_;
    }

    void
    protectPage(PageNum page) REQUIRES(shard_.lock) override
    {
        mprotectRange(page, 1, PROT_READ);
        setWritableBit(page, false);
    }

    void
    unprotectPage(PageNum page) REQUIRES(shard_.lock) override
    {
        mprotectRange(page, 1, PROT_READ | PROT_WRITE);
        setWritableBit(page, true);
    }

    void
    scanAndClearDirty(bool flush_tlb,
                      FunctionRef<void(PageNum, bool)> visitor)
        REQUIRES(shard_.lock) override
    {
        // Userspace dirty-bit emulation: every epoch re-protects the
        // writable (== written-this-epoch) pages, so the next write
        // faults and refreshes recency.  `flush_tlb` is implicit in
        // mprotect (the kernel shoots down stale TLB entries).
        (void)flush_tlb;
        if (region_.config_.legacyEpochScan) {
            scanLinear(visitor);
            return;
        }
        // Two-level bitmap walk: only words (and summary words) with
        // a writable page in them are touched, so a mostly-clean
        // shard scans in O(dirty), not O(pages).
        PageNum run_start = invalidPage;
        PageNum run_end = 0;
        for (std::uint64_t s = 0; s < summary_.size(); ++s) {
            std::uint64_t sword = summary_[s];
            if (!sword)
                continue;
            summary_[s] = 0;
            while (sword) {
                const std::uint64_t w =
                    s * 64 + static_cast<unsigned>(
                                 std::countr_zero(sword));
                sword &= sword - 1;
                std::uint64_t word = writableWords_[w];
                writableWords_[w] = 0;
                while (word) {
                    const PageNum p =
                        w * 64 + static_cast<unsigned>(
                                     std::countr_zero(word));
                    word &= word - 1;
                    visitor(p, true);
                    if (run_start != invalidPage && p != run_end) {
                        mprotectRange(run_start,
                                      run_end - run_start, PROT_READ);
                        run_start = invalidPage;
                    }
                    if (run_start == invalidPage)
                        run_start = p;
                    run_end = p + 1;
                }
            }
        }
        if (run_start != invalidPage)
            mprotectRange(run_start, run_end - run_start, PROT_READ);
    }

    void
    persistPageAsync(PageNum page) REQUIRES(shard_.lock) override
    {
        if (!region_.copiers_) {
            persistPageBlocking(page);
            if (client_)
                client_->onPersistComplete(page);
            return;
        }
        // Called with the shard lock held; the copier queue lock is
        // a leaf (lock-ordering rule 4).  The job is POD and the
        // queue a preallocated ring: no allocation on this path.
        ioPending_[page] = 1;
        ++outstanding_;
        region_.copiers_->submit(shard_.index,
                                 CopierPool::Job{this, page, 1});
    }

    void
    persistRunAsync(PageNum first, unsigned count)
        REQUIRES(shard_.lock) override
    {
        if (count <= 1) {
            persistPageAsync(first);
            return;
        }
        if (!region_.copiers_) {
            // Inline mode: one vectored write, its group durability
            // barrier, then the per-page completions.
            persistRunGlobal(shard_.firstPage + first, count);
            copierSync();
            if (client_)
                for (unsigned i = 0; i < count; ++i)
                    client_->onPersistComplete(first + i);
            return;
        }
        if (region_.copiers_->nearCapacity(shard_.index)) {
            // Backlogged ring: a wide run — and the group sync its
            // batch will pay — would serialize behind the queued
            // jobs.  Degrade to per-page jobs so latency-sensitive
            // submissions keep flowing.
            region_.runFallbacks_.fetch_add(
                1, std::memory_order_relaxed);
            for (unsigned i = 0; i < count; ++i)
                persistPageAsync(first + i);
            return;
        }
        // One ring slot carries the whole run; the controller's
        // outstanding-IO cap counts its pages, so slots-used can
        // never exceed pages-outstanding and the ring cannot
        // overflow.
        for (unsigned i = 0; i < count; ++i)
            ioPending_[first + i] = 1;
        outstanding_ += count;
        region_.copiers_->submit(shard_.index,
                                 CopierPool::Job{this, first, count});
    }

    unsigned
    maxRunPages() const override
    {
        return region_.config_.coalesceRuns
                   ? std::max(region_.config_.maxRunPages, 1u)
                   : 1;
    }

    void
    persistPageBlocking(PageNum page) REQUIRES(shard_.lock) override
    {
        persistGlobal(shard_.firstPage + page);
    }

    /**
     * Copier phase 1: the device write, no locks held.  This is the
     * ONLY caller of the compressed persist variants: copier threads
     * run outside signal context, so the codec stays off the SIGSEGV
     * handler's call graph (tools/sigsafe_lint.py hard-fails if any
     * pagezip symbol becomes reachable from it).
     */
    void
    copierPersist(PageNum first, unsigned count) override
    {
        const bool compress = region_.config_.compressFlush;
        if (count <= 1) {
            if (compress)
                persistGlobalCompressed(shard_.firstPage + first);
            else
                persistGlobal(shard_.firstPage + first);
        } else {
            if (compress)
                persistRunGlobalCompressed(shard_.firstPage + first,
                                           count);
            else
                persistRunGlobal(shard_.firstPage + first, count);
        }
    }

    /**
     * Group durability barrier for a copier batch that carried a run
     * (also used inline by persistRunAsync).  No locks held.
     */
    void
    copierSync() override
    {
        // With a sidecar the barrier also promotes this batch's
        // commit records (data fdatasync first, then the records:
        // COMMITTED can never outrun its data).
        const int error =
            region_.meta_
                ? region_.meta_->commitPending(region_.fd_)
                : fdatasyncWithRetry(region_.fd_);
        if (error != 0)
            fatal("group sync to backing file failed after bounded "
                  "retries: ", std::strerror(error));
    }

    /** Copier phase 2: bookkeeping under the shard lock. */
    void
    copierComplete(PageNum first, unsigned count)
        EXCLUDES(shard_.lock) override
    {
        common::MutexLock guard(shard_.lock);
        for (unsigned i = 0; i < count; ++i)
            ioPending_[first + i] = 0;
        outstanding_ -= count;
        if (client_)
            for (unsigned i = 0; i < count; ++i)
                client_->onPersistComplete(first + i);
        shard_.ioCv.notify_all();
    }

    void
    waitForPersist(PageNum page) REQUIRES(shard_.lock) override
    {
        if (!ioPending_[page])
            return;
        // The wait releases the caller's shard lock while blocked
        // (CondVar adopts the native handle and hands it back).
        shard_.ioCv.wait(shard_.lock, [&]() REQUIRES(shard_.lock) {
            return !ioPending_[page];
        });
    }

    void
    waitForAnyPersist() REQUIRES(shard_.lock) override
    {
        if (outstanding_ == 0)
            return;
        const unsigned snapshot = outstanding_;
        shard_.ioCv.wait(shard_.lock, [&]() REQUIRES(shard_.lock) {
            return outstanding_ < snapshot;
        });
    }

    unsigned
    outstandingIos() const REQUIRES(shard_.lock) override
    {
        return outstanding_;
    }

  private:
    void
    persistGlobal(PageNum global)
    {
        const std::uint64_t ps = region_.pageSize_;
        const char *src = region_.mem_ + global * ps;
        MetaSidecar *const meta = region_.meta_.get();
        VIYOJIT_IGNORE_READS_BEGIN();
        if (meta) {
            // Commit protocol step 1: the PENDING record lands
            // before the data write, so a crash between here and the
            // group sync reads back as a torn flush, never as silent
            // corruption.  The page is write-protected for the whole
            // persist, so the CRC and the write see the same bytes.
            meta->recordPage(
                global, common::crc32c(src, ps),
                region_.flushEpoch_.load(std::memory_order_relaxed),
                region_.nextRunId_.fetch_add(
                    1, std::memory_order_relaxed));
        }
        const int error =
            pwriteFullyWithRetry(region_.fd_, src, ps, global * ps);
        VIYOJIT_IGNORE_READS_END();
        if (error != 0)
            fatal("page persist to backing file failed after bounded "
                  "retries: ", std::strerror(error));
        if (meta)
            meta->markWritten(global);
        region_.bytesPersisted_.fetch_add(ps,
                                          std::memory_order_relaxed);
    }

    /**
     * Vectored write of `count` contiguous pages in one submission.
     * The iovec block lives on the stack (the inline run path is
     * reachable from the SIGSEGV admission path, which must not
     * heap-allocate), chunked so arbitrarily wide runs still fit.
     */
    void
    persistRunGlobal(PageNum global_first, unsigned count)
    {
        const std::uint64_t ps = region_.pageSize_;
        MetaSidecar *const meta = region_.meta_.get();
        const std::uint64_t run_id =
            meta ? region_.nextRunId_.fetch_add(
                       1, std::memory_order_relaxed)
                 : 0;
        const std::uint64_t epoch =
            meta ? region_.flushEpoch_.load(std::memory_order_relaxed)
                 : 0;
        constexpr unsigned kChunk = 64;
        struct iovec iov[kChunk];
        unsigned done = 0;
        while (done < count) {
            const unsigned n = std::min(count - done, kChunk);
            VIYOJIT_IGNORE_READS_BEGIN();
            for (unsigned i = 0; i < n; ++i) {
                const PageNum g = global_first + done + i;
                iov[i].iov_base = region_.mem_ + g * ps;
                iov[i].iov_len = ps;
                if (meta)
                    meta->recordPage(
                        g, common::crc32c(region_.mem_ + g * ps, ps),
                        epoch, run_id);
            }
            const int error = pwritevFullyWithRetry(
                region_.fd_, iov, n, (global_first + done) * ps);
            VIYOJIT_IGNORE_READS_END();
            if (error != 0)
                fatal("run persist to backing file failed after "
                      "bounded retries: ", std::strerror(error));
            if (meta)
                for (unsigned i = 0; i < n; ++i)
                    meta->markWritten(global_first + done + i);
            done += n;
        }
        region_.bytesPersisted_.fetch_add(
            static_cast<std::uint64_t>(count) * ps,
            std::memory_order_relaxed);
    }

    /**
     * Per-copier-thread codec scratch, sized to pagezipBound(page
     * size) on first use.  thread_local because copier workers from
     * the shared pool can run persists for the same shard
     * concurrently; never touched in signal context.
     */
    std::uint8_t *
    compressScratch()
    {
        static thread_local std::vector<std::uint8_t> scratch;
        const std::size_t bound =
            common::pagezipBound(region_.pageSize_);
        if (scratch.size() < bound)
            scratch.resize(bound);
        return scratch.data();
    }

    /**
     * Compressed single-page persist (copier threads only).  Same
     * commit protocol as persistGlobal, with the stored length in
     * the PENDING record BEFORE the data write: a crash mid-write
     * reads back as a torn compressed flush, never as silent
     * corruption.  The codec's bypass (pagezipCompress == 0) ships
     * the raw page instead, so incompressible data costs only the
     * size probe.
     */
    void
    persistGlobalCompressed(PageNum global)
    {
        const std::uint64_t ps = region_.pageSize_;
        const char *src = region_.mem_ + global * ps;
        // compressFlush requires the sidecar (checked at create).
        MetaSidecar *const meta = region_.meta_.get();
        std::uint8_t *const scratch = compressScratch();
        VIYOJIT_IGNORE_READS_BEGIN();
        const std::uint64_t stored = common::pagezipCompress(
            src, ps, scratch, common::pagezipBound(ps));
        meta->recordPage(
            global, common::crc32c(src, ps),
            region_.flushEpoch_.load(std::memory_order_relaxed),
            region_.nextRunId_.fetch_add(1,
                                         std::memory_order_relaxed),
            static_cast<std::uint32_t>(stored));
        const int error =
            stored != 0 ? pwriteFullyWithRetry(region_.fd_, scratch,
                                               stored, global * ps)
                        : pwriteFullyWithRetry(region_.fd_, src, ps,
                                               global * ps);
        VIYOJIT_IGNORE_READS_END();
        if (error != 0)
            fatal("compressed page persist to backing file failed "
                  "after bounded retries: ", std::strerror(error));
        meta->markWritten(global);
        region_.noteCompressedShip(stored, ps);
        region_.bytesPersisted_.fetch_add(ps,
                                          std::memory_order_relaxed);
    }

    /**
     * Compressed run persist (copier threads only).  Bypassed (raw)
     * pages still coalesce into vectored stretches; a compressed
     * page breaks the stretch and lands its stream at the page's own
     * slot offset — the slot remainder stays stale, which is fine
     * because recovery reads only storedLen bytes.  markWritten for
     * raw pages happens after the pwritev that covered them.
     */
    void
    persistRunGlobalCompressed(PageNum global_first, unsigned count)
    {
        const std::uint64_t ps = region_.pageSize_;
        MetaSidecar *const meta = region_.meta_.get();
        const std::uint64_t run_id = region_.nextRunId_.fetch_add(
            1, std::memory_order_relaxed);
        const std::uint64_t epoch =
            region_.flushEpoch_.load(std::memory_order_relaxed);
        std::uint8_t *const scratch = compressScratch();
        constexpr unsigned kChunk = 64;
        struct iovec iov[kChunk];
        PageNum raw_first = 0;
        unsigned raw_n = 0;
        const auto flush_raw = [&]() {
            if (raw_n == 0)
                return;
            const int error = pwritevFullyWithRetry(
                region_.fd_, iov, raw_n, raw_first * ps);
            if (error != 0)
                fatal("run persist to backing file failed after "
                      "bounded retries: ", std::strerror(error));
            for (unsigned i = 0; i < raw_n; ++i)
                meta->markWritten(raw_first + i);
            raw_n = 0;
        };
        VIYOJIT_IGNORE_READS_BEGIN();
        for (unsigned i = 0; i < count; ++i) {
            const PageNum g = global_first + i;
            const char *src = region_.mem_ + g * ps;
            const std::uint64_t stored = common::pagezipCompress(
                src, ps, scratch, common::pagezipBound(ps));
            meta->recordPage(g, common::crc32c(src, ps), epoch,
                             run_id,
                             static_cast<std::uint32_t>(stored));
            region_.noteCompressedShip(stored, ps);
            if (stored != 0) {
                flush_raw();
                if (const int error = pwriteFullyWithRetry(
                        region_.fd_, scratch, stored, g * ps);
                    error != 0)
                    fatal("compressed run persist to backing file "
                          "failed after bounded retries: ",
                          std::strerror(error));
                meta->markWritten(g);
                continue;
            }
            if (raw_n == 0)
                raw_first = g;
            iov[raw_n].iov_base = region_.mem_ + g * ps;
            iov[raw_n].iov_len = ps;
            if (++raw_n == kChunk)
                flush_raw();
        }
        flush_raw();
        VIYOJIT_IGNORE_READS_END();
        region_.bytesPersisted_.fetch_add(
            static_cast<std::uint64_t>(count) * ps,
            std::memory_order_relaxed);
    }

    void
    setWritableBit(PageNum page, bool v) REQUIRES(shard_.lock)
    {
        const std::uint64_t w = page / 64;
        const std::uint64_t bit = 1ULL << (page % 64);
        if (v) {
            writableWords_[w] |= bit;
            summary_[w / 64] |= 1ULL << (w % 64);
        } else {
            writableWords_[w] &= ~bit;
            if (writableWords_[w] == 0)
                summary_[w / 64] &= ~(1ULL << (w % 64));
        }
    }

    /** Pre-optimization O(pages) sweep, kept for A/B studies. */
    void
    scanLinear(FunctionRef<void(PageNum, bool)> visitor)
        REQUIRES(shard_.lock)
    {
        const std::uint64_t n = shard_.pages;
        PageNum run_start = invalidPage;
        for (PageNum p = 0; p < n; ++p) {
            const bool writable =
                (writableWords_[p / 64] >> (p % 64)) & 1;
            if (writable) {
                visitor(p, true);
                setWritableBit(p, false);
                if (run_start == invalidPage)
                    run_start = p;
            } else if (run_start != invalidPage) {
                mprotectRange(run_start, p - run_start, PROT_READ);
                run_start = invalidPage;
            }
        }
        if (run_start != invalidPage)
            mprotectRange(run_start, n - run_start, PROT_READ);
    }

    void
    mprotectRange(PageNum first, std::uint64_t pages, int prot)
    {
        if (pages == 0)
            return;
        const std::uint64_t ps = region_.pageSize_;
        char *base = region_.mem_ + (shard_.firstPage + first) * ps;
        if (::mprotect(base, pages * ps, prot) != 0)
            panic("mprotect failed: ", std::strerror(errno));
    }

    NvRegion &region_;
    Shard &shard_;
    std::vector<std::uint64_t> writableWords_ GUARDED_BY(shard_.lock);
    std::vector<std::uint64_t> summary_ GUARDED_BY(shard_.lock);

    /** Nonzero while a background copy of the page is queued. */
    std::vector<std::uint8_t> ioPending_ GUARDED_BY(shard_.lock);
    unsigned outstanding_ GUARDED_BY(shard_.lock) = 0;
};

NvRegion::NvRegion(const std::string &backing_path, std::uint64_t bytes,
                   const RuntimeConfig &config, bool recover_contents)
    : config_(config)
{
    pageSize_ = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
    if (config.dirtyBudgetPages == 0)
        fatal("runtime requires a dirty budget of at least one page");
    if (config.compressFlush && !config.checksumCommits)
        fatal("compressFlush requires checksumCommits: the stored "
              "length lives in the sidecar commit record");
    if (config.compressFlush && config.copierThreads == 0)
        fatal("compressFlush requires copier threads: inline "
              "persists run on the SIGSEGV admission path, which "
              "must never reach the codec");

    const int flags = recover_contents ? O_RDWR : (O_RDWR | O_CREAT |
                                                   O_TRUNC);
    fd_ = ::open(backing_path.c_str(), flags, 0644);
    if (fd_ < 0)
        fatal("cannot open backing file '", backing_path,
              "': ", std::strerror(errno));

    if (recover_contents) {
        struct stat st;
        if (::fstat(fd_, &st) != 0)
            fatal("fstat failed: ", std::strerror(errno));
        bytes_ = static_cast<std::uint64_t>(st.st_size);
        if (bytes_ == 0)
            fatal("backing file is empty; nothing to recover");
    } else {
        bytes_ = (bytes + pageSize_ - 1) / pageSize_ * pageSize_;
        if (::ftruncate(fd_, static_cast<off_t>(bytes_)) != 0)
            fatal("ftruncate failed: ", std::strerror(errno));
    }
    pageCount_ = bytes_ / pageSize_;

    void *mem = ::mmap(nullptr, bytes_, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED)
        fatal("mmap failed: ", std::strerror(errno));
    mem_ = static_cast<char *>(mem);

    const std::string meta_path = backing_path + ".meta";
    if (config.checksumCommits && !recover_contents)
        meta_ = MetaSidecar::create(meta_path, pageCount_, pageSize_);

    if (recover_contents) {
        if (config.checksumCommits)
            meta_ =
                MetaSidecar::open(meta_path, pageCount_, pageSize_);
        loadImage();
        if (meta_) {
            recoveryReport_.sidecarFound = true;
            recoveryReport_.badEntries =
                meta_->loadStats().badEntries;
            verifyImage();
            // New commits must sort after everything the old
            // incarnation sealed.
            flushEpoch_.store(meta_->lastSealedEpoch() + 1,
                              std::memory_order_relaxed);
            nextRunId_.store(meta_->lastSealedRunId() + 1,
                             std::memory_order_relaxed);
        } else if (config.checksumCommits) {
            warn("no valid sidecar for '", backing_path,
                 "': legacy image, contents load unverified");
            meta_ = MetaSidecar::create(meta_path, pageCount_,
                                        pageSize_);
        }
    }

    // Fig. 6 step 1: everything starts write-protected and clean.
    if (::mprotect(mem_, bytes_, PROT_READ) != 0)
        fatal("initial mprotect failed: ", std::strerror(errno));

    // Shard plan: the page space splits into power-of-two-sized
    // contiguous blocks so shardOf() is a shift.  The last shard may
    // be short.
    const std::uint64_t budget = config.dirtyBudgetPages;
    std::uint64_t desired = config.shards;
    if (desired == 0) {
        const std::uint64_t hw = std::max<std::uint64_t>(
            1, std::thread::hardware_concurrency());
        const std::uint64_t cap = std::min(
            {hw, pageCount_, std::max<std::uint64_t>(1, budget / 2)});
        desired = std::bit_floor(cap);
    }
    if (!std::has_single_bit(desired))
        fatal("shard count must be a power of two");
    std::uint64_t pps = 1;
    while (pps * desired < pageCount_)
        pps *= 2;
    ppsShift_ = static_cast<unsigned>(std::countr_zero(pps));
    const unsigned shard_count =
        static_cast<unsigned>((pageCount_ + pps - 1) / pps);

    std::uint64_t per_shard_quota = budget;
    if (shard_count > 1) {
        if (budget < shard_count)
            fatal("sharded region needs a dirty budget of at least "
                  "one page per shard");
        // Initial split leaves roughly half the budget in the pool
        // as migration headroom for bursting shards.
        per_shard_quota = std::clamp<std::uint64_t>(
            budget / (2 * shard_count), 1, budget / shard_count);
        pool_ = std::make_unique<core::BudgetPool>(
            budget, budget - per_shard_quota * shard_count);
        quotaBatch_ = config.quotaBatchPages != 0
                          ? config.quotaBatchPages
                          : std::max<std::uint64_t>(
                                1, per_shard_quota / 4);
    }

    core::ViyojitConfig core_config;
    core_config.pageSize = pageSize_;
    core_config.dirtyBudgetPages = per_shard_quota;
    core_config.historyEpochs = config.historyEpochs;
    core_config.pressureWeightCurrent = config.pressureWeightCurrent;
    core_config.maxOutstandingIos = config.maxOutstandingIos;
    core_config.legacyEpochScan = config.legacyEpochScan;
    core_config.coalesceRuns = config.coalesceRuns;
    core_config.maxRunPages = config.maxRunPages;
    core_config.extentShift = config.extentShift;
    // Inline persists make the async shed degenerate to the same
    // blocking write; gate on copiers so copiers-off regions stay
    // bit-identical (including the shedEvictions counter).
    core_config.shedBlockedEvictions =
        config.shedBlockedEvictions && config.copierThreads > 0;
    core_config.sloHeadroomPages = config.sloHeadroomPages;

    if (config.copierThreads > 0) {
        // Ring capacity = the per-shard outstanding-IO cap the
        // controller enforces, so a queue can never overflow and
        // submission never allocates.
        copiers_ = std::make_unique<CopierPool>(
            config.copierThreads, shard_count,
            config.copierBatchPages,
            std::max(config.maxOutstandingIos, 1u));
    }

    shards_.reserve(shard_count);
    for (unsigned i = 0; i < shard_count; ++i) {
        auto shard = std::make_unique<Shard>();
        shard->index = i;
        shard->owner = this;
        shard->firstPage = static_cast<PageNum>(i) * pps;
        shard->pages =
            std::min<std::uint64_t>(pps,
                                    pageCount_ - shard->firstPage);
        shard->backend = std::make_unique<ShardBackend>(*this, *shard);
        // The shard is not yet published (no faults can route here
        // before registerRegion below), but the controller pointer
        // is lock-annotated, so honour the contract — the lock is
        // uncontended.
        common::MutexLock guard(shard->lock);
        shard->controller =
            std::make_unique<core::DirtyBudgetController>(
                *shard->backend, core_config);
        if (pool_) {
            shard->controller->attachBudgetPool(pool_.get(),
                                                quotaBatch_);
            // Watermarks hang off the FAIR share (budget / shards),
            // not the deliberately-low initial quota, so a shard
            // that warms up migrates toward its share in batches.
            shard->controller->deriveQuotaWatermarks(
                budget / shard_count);
        }
        shard->gaugeView = shard->controller.get();
        shards_.push_back(std::move(shard));
    }

    registerRegion(this, mem_, bytes_);
    if (config.startEpochThread)
        startEpochThread();
}

std::unique_ptr<NvRegion>
NvRegion::create(const std::string &backing_path, std::uint64_t bytes,
                 const RuntimeConfig &config)
{
    return std::unique_ptr<NvRegion>(
        new NvRegion(backing_path, bytes, config, false));
}

std::unique_ptr<NvRegion>
NvRegion::recover(const std::string &backing_path,
                  const RuntimeConfig &config)
{
    return std::unique_ptr<NvRegion>(
        new NvRegion(backing_path, 0, config, true));
}

NvRegion::~NvRegion()
{
    stopEpochThread();
    for (auto &shard : shards_) {
        common::MutexLock guard(shard->lock);
        shard->controller->flushAllDirty();
    }
    // The per-shard flushes waited out every queued copy, so the
    // copier queues are empty; join the workers before tearing down
    // the backends their jobs reference.
    copiers_.reset();
    // Destructor: best effort only — cannot throw, so a sync failure
    // is reported but not escalated.
    if (meta_) {
        if (const int error = meta_->commitPending(fd_); error != 0)
            warn("commit barrier during region teardown failed: ",
                 std::strerror(error));
        else if (const int error2 = meta_->seal(
                     flushEpoch_.load(std::memory_order_relaxed),
                     nextRunId_.load(std::memory_order_relaxed));
                 error2 != 0)
            warn("sidecar seal during region teardown failed: ",
                 std::strerror(error2));
    } else if (const int error = fdatasyncWithRetry(fd_);
               error != 0) {
        warn("fdatasync during region teardown failed: ",
             std::strerror(error));
    }
    unregisterRegion(this);
    if (mem_)
        ::munmap(mem_, bytes_);
    if (fd_ >= 0)
        ::close(fd_);
}

namespace
{

/** One CPU relax in a spin loop (no syscall, no memory traffic). */
inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
    asm volatile("yield" ::: "memory");
#else
    asm volatile("" ::: "memory");
#endif
}

/**
 * Capped exponential backoff for fault-path admission retries.  Runs
 * inside the SIGSEGV handler, so only async-signal-safe waits:
 * attempts 0-3 spin on a CPU relax (contention usually resolves in
 * nanoseconds), 4-7 cede the core with sched_yield (useful when the
 * holder is preempted, and the only option on a single-CPU host),
 * and 8+ sleep 1us << (attempt - 8), capped at 256us — long enough
 * for a device write to complete, short enough that a freed quota
 * batch is picked up promptly.
 */
void
faultBackoff(unsigned attempt)
{
    if (attempt < 4) {
        for (unsigned i = 0; i < (16u << attempt); ++i)
            cpuRelax();
        return;
    }
    if (attempt < 8) {
        ::sched_yield();
        return;
    }
    const unsigned shift = std::min(attempt - 8, 8u);
    struct timespec ts = {0, 1000L << shift};
    ::nanosleep(&ts, nullptr);
}

/** Attempt index at which faultBackoff first hits its 256us cap; a
 *  fault still unadmitted after the whole ladder is starving. */
constexpr unsigned kBackoffLadder = 16;

} // namespace

bool
NvRegion::handleFault(void *addr)
{
    const auto a = reinterpret_cast<std::uintptr_t>(addr);
    const auto base = reinterpret_cast<std::uintptr_t>(mem_);
    if (a < base || a >= base + bytes_)
        return false;
    const PageNum page = (a - base) / pageSize_;
    Shard &shard = *shards_[shardOf(page)];
    const PageNum local = page - shard.firstPage;
    // Pooled shards first try to admit WITHOUT evicting: spare quota
    // idling in a sibling is free, an eviction costs an SSD write.
    // Only once a full donor sweep finds no spare does the retry
    // permit a local eviction.  Standalone (shards=1, no pool) always
    // evicts directly — onWriteFault never fails there, so the retry
    // loop (and its counters) is dead code unsharded.
    bool allow_evict = pool_ == nullptr;
    unsigned attempt = 0;
    for (;;) {
        {
            common::MutexLock guard(shard.lock);
            if (shard.controller->onWriteFault(local, allow_evict))
                return true;
        }
        // Quota starved: pull spare quota out of a sibling
        // (lock-ordering rule 3) and retry the fault.  If no sibling
        // had any, fall back to evicting our own coldest page.  The
        // sweep runs on the first retry and then every fourth one:
        // once an immediate steal has failed, surplus usually arrives
        // via the pool (a sibling's boundary donation) or a local
        // eviction completes first, so re-sweeping the gauges every
        // lap just reheats donor cache lines.
        if (attempt % 4 == 0)
            allow_evict = !stealQuotaFor(shard.index);
        else
            allow_evict = true;
        // Capped exponential backoff between retries.  The retry can
        // lose the deposited quota to a racing thread's borrow, so
        // N starving threads on one shard would otherwise convoy —
        // re-sweeping every donor lock per lap (the old bare yield()
        // spin).  Backing off lets the winner finish and keeps the
        // donor locks cool; the cap bounds added fault latency.
        shard.backoffRetries.fetch_add(1, std::memory_order_relaxed);
        if (attempt + 1 == kBackoffLadder)
            shard.starvedFaults.fetch_add(1,
                                          std::memory_order_relaxed);
        faultBackoff(attempt);
        if (attempt < kBackoffLadder)
            ++attempt;
    }
}

bool
NvRegion::stealQuotaFor(unsigned thief)
{
    for (std::size_t step = 1; step < shards_.size(); ++step) {
        const std::size_t di = (thief + step) % shards_.size();
        Shard &donor = *shards_[di];
        // A steal only harvests spare ABOVE a donor's mid watermark
        // (a demand-driven early donation): taking in-band spare
        // would push the donor under its own low watermark, whose
        // compensating refill dries the pool for the next shard —
        // the quota-thrash cascade that made the old scheme take
        // every donor's lock on every starving fault.  The lock-free
        // gauge pre-filters in-band donors without touching their
        // lock; when every sibling is in-band the thief evicts
        // locally instead (cheap now that evictions shed to the
        // copier pipeline).
        if (donor.gaugeView->donatableQuotaGauge() == 0)
            continue;
        common::MutexLock guard(donor.lock);
        // Deposit while still holding the donor lock: quota is then
        // always either inside a shard or in the pool, so a thread
        // holding every shard lock (setDirtyBudget) observes
        // sum(quotas) + pool == total with nothing in transit.
        const std::uint64_t got =
            donor.controller->releaseDonatableQuota();
        if (got) {
            pool_->deposit(got);
            quotaSteals_.fetch_add(1, std::memory_order_relaxed);
            shards_[thief]->steals.fetch_add(
                1, std::memory_order_relaxed);
            return true;
        }
    }
    // Every donor's quota is fully occupied by dirty pages (or the
    // budget is momentarily in transit to another starving shard);
    // let the faulting shard evict locally.  The caller's backoff
    // replaces the bare yield() that used to sit here.
    return false;
}

void
NvRegion::epochTick()
{
    for (auto &shard : shards_) {
        common::MutexLock guard(shard->lock);
        shard->controller->onEpochBoundary();
    }
    flushEpoch_.fetch_add(1, std::memory_order_relaxed);
}

void
NvRegion::loadImage()
{
    constexpr std::uint64_t kChunk = 1ULL << 20;
    for (std::uint64_t off = 0; off < bytes_; off += kChunk) {
        const std::uint64_t n = std::min(kChunk, bytes_ - off);
        if (preadFullyWithRetry(fd_, mem_ + off, n, off) == 0)
            continue;
        // Bulk read failed even with bounded retries: isolate the
        // damage page-by-page instead of killing recovery.  Pages
        // that stay unreadable are zero-filled and quarantined; the
        // rest of the image still loads.
        for (std::uint64_t po = off; po < off + n;
             po += pageSize_) {
            const int error =
                preadFullyWithRetry(fd_, mem_ + po, pageSize_, po);
            if (error == 0)
                continue;
            const PageNum page = po / pageSize_;
            std::memset(mem_ + po, 0, pageSize_);
            recoveryReport_.quarantined.push_back(page);
            warn("recovery: page ", page, " unreadable (",
                 std::strerror(error),
                 "); zero-filled and quarantined");
        }
    }
}

void
NvRegion::verifyImage()
{
    const std::unordered_set<PageNum> unreadable(
        recoveryReport_.quarantined.begin(),
        recoveryReport_.quarantined.end());
    const std::uint64_t sealed = meta_->lastSealedEpoch();
    std::vector<char> raw(pageSize_);
    for (PageNum p = 0; p < pageCount_; ++p) {
        if (unreadable.contains(p))
            continue; // already settled as bad by loadImage()
        const MetaEntry e = meta_->entry(p);
        if (e.flags == MetaSidecar::kInvalid) {
            ++recoveryReport_.unverifiedPages;
            continue;
        }
        bool match;
        if (e.storedLen != 0) {
            // The slot holds a pagezip stream (loadImage read it
            // into mem_ verbatim): decode into scratch, then verify
            // the RAW-page CRC.  A codec failure is just another
            // mismatch — the classification below decides torn vs
            // stale vs silent, same as an uncompressed page.
            match = e.storedLen <= pageSize_ &&
                    common::pagezipDecompress(mem_ + p * pageSize_,
                                              e.storedLen, raw.data(),
                                              pageSize_) &&
                    common::crc32c(raw.data(), pageSize_) == e.crc;
            if (match) {
                std::memcpy(mem_ + p * pageSize_, raw.data(),
                            pageSize_);
                ++recoveryReport_.compressedPages;
            }
        } else {
            match = common::crc32c(mem_ + p * pageSize_,
                                   pageSize_) == e.crc;
        }
        if (match) {
            ++recoveryReport_.verifiedPages;
            continue;
        }
        ++recoveryReport_.checksumMismatches;
        const char *cls;
        if (e.flags == MetaSidecar::kPending || e.epoch > sealed) {
            // An unpromoted record, or a commit newer than the last
            // seal: the torn tail of a flush the crash interrupted.
            ++recoveryReport_.tornRunPages;
            cls = "torn flush tail";
        } else if (e.epoch == sealed) {
            ++recoveryReport_.staleEpochPages;
            cls = "stale epoch";
        } else {
            ++recoveryReport_.silentCorruptPages;
            cls = "silent corruption";
        }
        recoveryReport_.quarantined.push_back(p);
        warn("recovery: page ", p,
             " failed checksum verification (", cls,
             "); quarantined");
    }
}

void
NvRegion::scrubTick(std::uint64_t max_pages)
{
    if (!meta_ || max_pages == 0 || pageCount_ == 0)
        return;
    std::vector<char> buf(pageSize_);
    std::vector<char> raw(pageSize_);
    std::uint64_t scanned = 0;
    for (std::uint64_t step = 0;
         step < pageCount_ && scanned < max_pages; ++step) {
        const PageNum page = scrubCursor_;
        scrubCursor_ = (scrubCursor_ + 1) % pageCount_;
        // Cheap unlocked pre-filter; re-read authoritatively under
        // the shard lock below.
        if (meta_->entry(page).flags != MetaSidecar::kCommitted)
            continue;
        Shard &shard = *shards_[shardOf(page)];
        const PageNum local = page - shard.firstPage;
        common::MutexLock guard(shard.lock);
        // Budget-aware: stay out of a shard under dirty pressure,
        // and only check settled pages (clean, no IO in flight) so
        // the commit record is the page's current durable truth.
        if (shard.controller->tracker().count() + 2 >=
                shard.controller->dirtyBudget() ||
            shard.controller->tracker().isDirty(local) ||
            shard.controller->isInFlight(local)) {
            scrubSkippedBusy_.fetch_add(1,
                                        std::memory_order_relaxed);
            continue;
        }
        const MetaEntry e = meta_->entry(page);
        if (e.flags != MetaSidecar::kCommitted)
            continue;
        ++scanned;
        scrubScanned_.fetch_add(1, std::memory_order_relaxed);
        bool ok = false;
        if (e.storedLen == 0) {
            ok = preadFullyWithRetry(fd_, buf.data(), pageSize_,
                                     page * pageSize_) == 0 &&
                 common::crc32c(buf.data(), pageSize_) == e.crc;
        } else if (e.storedLen <= pageSize_) {
            // Compressed slot: read only the stream, decode, then
            // check the RAW-page CRC (the slot remainder is stale).
            ok = preadFullyWithRetry(fd_, buf.data(), e.storedLen,
                                     page * pageSize_) == 0 &&
                 common::pagezipDecompress(buf.data(), e.storedLen,
                                           raw.data(), pageSize_) &&
                 common::crc32c(raw.data(), pageSize_) == e.crc;
        }
        if (ok)
            continue;
        scrubMismatches_.fetch_add(1, std::memory_order_relaxed);
        warn("scrub: durable copy of page ", page,
             " diverged from its commit record; repairing from the "
             "DRAM copy");
        // The page is clean, so DRAM still holds exactly what the
        // commit record described: re-persist and re-commit it.
        core::PagingBackend &pb = *shard.backend;
        pb.persistPageBlocking(local);
        if (const int error = meta_->commitPending(fd_);
            error != 0) {
            warn("scrub: repair commit failed: ",
                 std::strerror(error));
            continue;
        }
        scrubRepaired_.fetch_add(1, std::memory_order_relaxed);
    }
}

std::uint64_t
NvRegion::flushAll()
{
    std::uint64_t flushed = 0;
    for (auto &shard : shards_) {
        common::MutexLock guard(shard->lock);
        flushed += shard->controller->flushAllDirty();
    }
    if (meta_) {
        if (const int error = meta_->commitPending(fd_); error != 0)
            fatal("commit barrier failed after bounded retries: ",
                  std::strerror(error));
        // Every dirty page is now durably committed: seal the
        // header so recovery classifies older commits as stable.
        if (const int error = meta_->seal(
                flushEpoch_.load(std::memory_order_relaxed),
                nextRunId_.load(std::memory_order_relaxed));
            error != 0)
            fatal("sidecar seal failed: ", std::strerror(error));
    } else if (const int error = fdatasyncWithRetry(fd_);
               error != 0) {
        fatal("fdatasync failed after bounded retries: ",
              std::strerror(error));
    }
    return flushed;
}

void
NvRegion::setDirtyBudget(std::uint64_t pages)
{
    if (!pool_) {
        common::MutexLock guard(shards_[0]->lock);
        shards_[0]->controller->setDirtyBudget(pages);
        return;
    }
    if (pages == 0)
        fatal("dirty budget must be at least one page");

    // Whole-region retune, done INCREMENTALLY — one shard lock at a
    // time, never all at once.  A shrink can block on in-flight
    // copier IO (releaseQuota evicts synchronously, and the cv wait
    // releases only the one lock it adopted), so holding the other
    // shard locks across it would let faulting threads race the
    // redistribution books — and TSan rightly calls the re-acquire a
    // lock-order inversion.  Instead, reclaimed quota is destroyed
    // straight out of the donor (destroyReclaimed never lets it
    // touch available()), so the pool total only moves down, and
    // sum(dirty) <= total holds at every intermediate step.
    common::MutexLock retune_guard(retuneLock_);
    const std::uint64_t old_total = pool_->totalPages();
    if (pages >= old_total) {
        pool_->grow(pages - old_total);
        rederiveWatermarks(pages);
        return;
    }

    // Keep the two-page straddling floor per shard whenever the new
    // total can honour it (mirrors core::redistributeBudget).
    const std::uint64_t n = shards_.size();
    const std::uint64_t floor =
        pages >= 2 * n ? 2 : (pages >= n ? 1 : 0);

    std::uint64_t to_destroy = old_total - pages;
    to_destroy -= pool_->confiscate(to_destroy);
    while (to_destroy > 0) {
        for (std::size_t i = 0; i < n && to_destroy > 0; ++i) {
            Shard &donor = *shards_[i];
            common::MutexLock guard(donor.lock);
            const std::uint64_t got =
                donor.controller->releaseQuota(to_destroy, floor);
            pool_->destroyReclaimed(got);
            to_destroy -= got;
        }
        // Quota borrowed mid-sweep came out of available(); claw it
        // from there too.  Progress is guaranteed: floors sum to at
        // most `pages`, so while total > pages, some shard sits
        // above its floor or the pool has available quota.
        to_destroy -= pool_->confiscate(to_destroy);
    }
    rederiveWatermarks(pages);
}

void
NvRegion::rederiveWatermarks(std::uint64_t total_pages)
{
    // Watermarks and the SLO headroom scale with the fair share, so
    // a retuned total must re-derive them: stale high watermarks
    // after a shrink would donate a degraded budget away, stale low
    // watermarks after a grow would leave shards refilling in
    // too-small batches.  One shard lock at a time under the retune
    // mutex — same discipline (and same no-new-edges argument) as
    // the quota sweep above.
    const std::uint64_t share =
        std::max<std::uint64_t>(1, total_pages / shards_.size());
    for (auto &shard : shards_) {
        common::MutexLock guard(shard->lock);
        shard->controller->deriveQuotaWatermarks(share);
    }
}

// The ascending sweep over ALL shard locks is a dynamic lock set the
// static analysis cannot express (see the lock-ordering block in
// region.hh, rule 1); the TSan CI suites cover this function.
RegionStats
NvRegion::stats() const NO_THREAD_SAFETY_ANALYSIS
{
    // Coherent snapshot: all shard locks, ascending.
    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(shards_.size());
    for (auto &shard : shards_)
        locks.emplace_back(shard->lock.native());

    RegionStats out;
    out.shards = shards_.size();
    if (pool_)
        out.perShard.resize(shards_.size());
    std::uint64_t quotas = 0;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
        const Shard &shard = *shards_[i];
        const core::ControllerStats &cs = shard.controller->stats();
        out.writeFaults += cs.writeFaults;
        out.blockedEvictions += cs.blockedEvictions;
        out.proactiveCopies += cs.proactiveCopies;
        out.quotaBorrowedPages += cs.quotaBorrowedPages;
        out.quotaReturnedPages += cs.quotaReturnedPages;
        out.runSubmits += cs.runSubmits;
        out.runPagesCoalesced += cs.runPagesCoalesced;
        out.watermarkRefills += cs.watermarkRefills;
        out.proactiveDonations += cs.proactiveDonations;
        out.shedEvictions += cs.shedEvictions;
        const std::uint64_t steals =
            shard.steals.load(std::memory_order_relaxed);
        const std::uint64_t backoffs =
            shard.backoffRetries.load(std::memory_order_relaxed);
        out.backoffRetries += backoffs;
        out.starvedFaults +=
            shard.starvedFaults.load(std::memory_order_relaxed);
        out.dirtyPages += shard.controller->tracker().count();
        quotas += shard.controller->dirtyBudget();
        if (pool_) {
            RegionStats::ShardCounters &ps = out.perShard[i];
            ps.steals = steals;
            ps.watermarkRefills = cs.watermarkRefills;
            ps.proactiveDonations = cs.proactiveDonations;
            ps.backoffRetries = backoffs;
        }
    }
    // Epochs advance in lockstep across shards; report one, not n.
    out.epochs = shards_[0]->controller->stats().epochs;
    out.bytesPersisted =
        bytesPersisted_.load(std::memory_order_relaxed);
    out.quotaSteals = quotaSteals_.load(std::memory_order_relaxed);
    out.runFallbacks = runFallbacks_.load(std::memory_order_relaxed);
    out.scrubScanned = scrubScanned_.load(std::memory_order_relaxed);
    out.scrubSkippedBusy =
        scrubSkippedBusy_.load(std::memory_order_relaxed);
    out.scrubMismatches =
        scrubMismatches_.load(std::memory_order_relaxed);
    out.scrubRepaired =
        scrubRepaired_.load(std::memory_order_relaxed);
    out.metaEntryWriteErrors = meta_ ? meta_->entryWriteErrors() : 0;
    out.compressedPersists =
        compressedPersists_.load(std::memory_order_relaxed);
    out.compressBypasses =
        compressBypasses_.load(std::memory_order_relaxed);
    out.storedBytesPersisted =
        storedBytesPersisted_.load(std::memory_order_relaxed);
    if (pool_) {
        out.poolAvailablePages = pool_->available();
        out.dirtyBudgetPages = pool_->totalPages();
    } else {
        out.dirtyBudgetPages = quotas;
    }
    return out;
}

void
NvRegion::startEpochThread()
{
    // acq_rel: the winning exchange must observe a prior stop's
    // teardown and publish this start to a concurrent stop.
    if (epochRunning_.exchange(true, std::memory_order_acq_rel))
        return;
    epochThread_ = std::thread([this]() {
        // The epoch thread takes shard locks and can fault while
        // scrubbing; give it the bounded alt-stack envelope.
        ensureFaultStackForThisThread();
        while (epochRunning_.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(
                std::chrono::microseconds(config_.epochMicros));
            if (!epochRunning_.load(std::memory_order_relaxed))
                break;
            // Fan the boundary across shards, one lock at a time.
            for (auto &shard : shards_) {
                common::MutexLock guard(shard->lock);
                shard->controller->onEpochBoundary();
            }
            flushEpoch_.fetch_add(1, std::memory_order_relaxed);
            if (config_.scrubPagesPerEpoch > 0)
                scrubTick(config_.scrubPagesPerEpoch);
        }
    });
}

void
NvRegion::stopEpochThread()
{
    if (!epochRunning_.exchange(false, std::memory_order_acq_rel))
        return;
    if (epochThread_.joinable())
        epochThread_.join();
}

} // namespace viyojit::runtime
