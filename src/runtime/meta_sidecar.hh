/**
 * @file
 * Durable flush-commit metadata for the mprotect runtime: a sidecar
 * file (`<backing>.meta`) holding a per-page CRC32C commit record
 * plus a double-buffered sealed header, so recovery can verify every
 * reloaded page and classify mismatches (torn flush tail vs. silent
 * corruption vs. stale epoch) instead of trusting the image blindly.
 *
 * On-disk layout (little-endian, fixed offsets):
 *
 *   [0, 64)      header slot 0
 *   [512, 576)   header slot 1
 *   [4096, ...)  32-byte per-page entries, indexed by page number
 *
 * Header slots alternate by generation (even -> slot 0, odd -> slot
 * 1); each carries its own CRC32C, and the reader picks the highest
 * valid generation, so a torn header write can never destroy the
 * previous seal.
 *
 * Commit protocol (ordering is the whole point):
 *
 *   1. recordPage()    entry rewritten as PENDING (before the data
 *                      write: a crash from here on is detectable as
 *                      a torn flush, not silent corruption);
 *   2. data pwrite     (the caller's persist path);
 *   3. markWritten()   the page joins the pending-promotion set —
 *                      only AFTER its data write returned;
 *   4. commitPending() snapshot the set, fdatasync the DATA file,
 *                      then rewrite the snapshotted entries as
 *                      COMMITTED and fdatasync the sidecar.  An
 *                      entry can therefore only read COMMITTED if
 *                      its data was durable first.
 *   5. seal()          (off the fault path) stamps the header with
 *                      the epoch/run high-water mark, closing the
 *                      torn-tail classification window.
 *
 * Every step reachable from the SIGSEGV admission path (1-4) is
 * allocation-free and lock-free: fixed preallocated buffers, atomic
 * bitmap words, and a single-promoter claim flag instead of a mutex
 * (a contended commitPending still makes the data durable; its pages
 * simply stay PENDING until the next barrier, which is safe — only
 * COMMITTED claims durability).  tools/sigsafe_lint.py walks this
 * TU.
 */

#ifndef VIYOJIT_RUNTIME_META_SIDECAR_HH
#define VIYOJIT_RUNTIME_META_SIDECAR_HH

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/types.hh"

namespace viyojit::runtime
{

/** One page's commit record as stored on disk (32 bytes, v2). */
struct MetaEntry
{
    /**
     * CRC32C of the RAW page content the flush carried — never the
     * compressed stream.  Recovery decompresses first (when
     * storedLen != 0), then verifies, so the codec and the checksum
     * stay independent failure domains (DESIGN.md §11).
     */
    std::uint32_t crc = 0;

    /** MetaSidecar::kInvalid / kPending / kCommitted. */
    std::uint32_t flags = 0;

    /** Flush epoch the persist belonged to. */
    std::uint64_t epoch = 0;

    /** Id of the flush submission (shared by a coalesced run). */
    std::uint64_t runId = 0;

    /**
     * Stored length of the durable image in the page's slot: 0 = the
     * full raw page; otherwise the pagezip stream's byte count (the
     * slot's remainder is stale garbage, ignored by recovery).
     */
    std::uint32_t storedLen = 0;

    /** CRC32C of the 28 bytes above; a torn entry write fails it. */
    std::uint32_t entryCrc = 0;
};

static_assert(sizeof(MetaEntry) == 32, "on-disk entry layout");

/** Recovery-time summary of what open() found. */
struct MetaLoadStats
{
    /** Entries whose self-CRC failed (torn/rotted metadata). */
    std::uint64_t badEntries = 0;

    /** Highest valid header generation found (0 = none). */
    std::uint64_t generation = 0;
};

/** The durable sidecar; one instance per NvRegion. */
class MetaSidecar
{
  public:
    static constexpr std::uint64_t kMagic = 0x3154454D4F594956ULL;

    /**
     * v2 added MetaEntry::storedLen (compressed flush images).  v1
     * files fail the header check and recover on the legacy
     * unverified path, exactly like a missing sidecar — acceptable
     * because the sidecar is an integrity cache, not data.
     */
    static constexpr std::uint32_t kVersion = 2;

    /** Entry states (MetaEntry::flags). */
    static constexpr std::uint32_t kInvalid = 0;
    static constexpr std::uint32_t kPending = 1;
    static constexpr std::uint32_t kCommitted = 2;

    static constexpr std::uint64_t kSlotOffset[2] = {0, 512};
    static constexpr std::uint64_t kEntriesOffset = 4096;

    /**
     * Create (or truncate) a sidecar for a fresh region: all entries
     * invalid, header sealed at generation 1 / epoch 0.  Fatal on IO
     * errors — creation is setup, not the fault path.
     */
    static std::unique_ptr<MetaSidecar> create(
        const std::string &path, std::uint64_t page_count,
        std::uint64_t page_size);

    /**
     * Open an existing sidecar for recovery.  Returns nullptr when
     * the file is missing or no header slot validates (legacy image:
     * the caller recovers unverified and starts a fresh sidecar).
     * Entries failing their self-CRC load as kInvalid and are
     * counted in loadStats().
     */
    static std::unique_ptr<MetaSidecar> open(
        const std::string &path, std::uint64_t page_count,
        std::uint64_t page_size);

    ~MetaSidecar();

    MetaSidecar(const MetaSidecar &) = delete;
    MetaSidecar &operator=(const MetaSidecar &) = delete;

    // ---- fault-path interface (allocation/lock-free) ---- //

    /**
     * Step 1: rewrite the page's entry as PENDING with the CRC (of
     * the RAW page) and stored length the flush is about to make
     * durable (`stored_len` 0 = raw).  Call BEFORE the data write —
     * a crash mid-write then reads as torn, never silent.  IO errors
     * are counted (entryWriteErrors()), not raised — the fault path
     * cannot log, and a missing pending record only degrades a
     * future mismatch's classification.
     */
    void recordPage(PageNum page, std::uint32_t crc,
                    std::uint64_t epoch, std::uint64_t run_id,
                    std::uint32_t stored_len = 0);

    /** Step 3: the page's data pwrite returned; it may now be
     *  promoted by the next barrier. */
    void markWritten(PageNum page);

    /**
     * Step 4, the group durability barrier: fdatasync `data_fd`,
     * then promote every page whose markWritten() preceded this
     * call.  Lock-free: if another barrier is mid-promotion, the
     * data fdatasync still runs (that is the caller's contract) and
     * the pages stay PENDING for the next barrier.  Returns 0 or
     * the first errno.
     */
    int commitPending(int data_fd);

    /**
     * Step 5: seal the header (alternating slot, generation + 1)
     * recording the epoch/run high-water mark.  Not fault-path.
     * Returns 0 or errno.
     */
    int seal(std::uint64_t epoch, std::uint64_t run_id);

    // ---- recovery / inspection ---- //

    /** In-memory view of a page's entry (coherent snapshot). */
    MetaEntry entry(PageNum page) const;

    std::uint64_t pageCount() const { return pageCount_; }

    /** Epoch high-water mark of the last durable seal. */
    std::uint64_t lastSealedEpoch() const { return lastSealedEpoch_; }

    /** Run-id high-water mark of the last durable seal. */
    std::uint64_t lastSealedRunId() const { return lastSealedRunId_; }

    const MetaLoadStats &loadStats() const { return loadStats_; }

    /** Pending-entry pwrites that failed on the fault path. */
    std::uint64_t entryWriteErrors() const
    {
        return entryWriteErrors_.load(std::memory_order_relaxed);
    }

  private:
    MetaSidecar(int fd, std::uint64_t page_count,
                std::uint64_t page_size);

    /** Serialize + pwrite one entry at its fixed slot. */
    int writeEntry(PageNum page, std::uint32_t crc,
                   std::uint32_t flags, std::uint64_t epoch,
                   std::uint64_t run_id, std::uint32_t stored_len);

    int fd_ = -1;
    std::uint64_t pageCount_ = 0;
    std::uint64_t pageSize_ = 0;

    /** Shadow of the on-disk entries; per-field atomics so the
     *  scrubber can read while copier threads record. */
    struct Shadow
    {
        std::atomic<std::uint32_t> crc{0};
        std::atomic<std::uint32_t> flags{0};
        std::atomic<std::uint64_t> epoch{0};
        std::atomic<std::uint64_t> runId{0};
        std::atomic<std::uint32_t> storedLen{0};
    };
    std::unique_ptr<Shadow[]> shadow_;

    /** Pages written-but-unpromoted, one bit each. */
    std::unique_ptr<std::atomic<std::uint64_t>[]> pending_;

    /** Promotion scratch (guarded by promoting_). */
    std::unique_ptr<std::uint64_t[]> snapshot_;
    std::uint64_t words_ = 0;

    /** Single-promoter claim for commitPending's promotion phase. */
    std::atomic<bool> promoting_{false};

    std::atomic<std::uint64_t> entryWriteErrors_{0};

    std::uint64_t generation_ = 0;
    std::uint64_t lastSealedEpoch_ = 0;
    std::uint64_t lastSealedRunId_ = 0;

    MetaLoadStats loadStats_;
};

} // namespace viyojit::runtime

#endif // VIYOJIT_RUNTIME_META_SIDECAR_HH
