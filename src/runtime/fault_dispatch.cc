#include "runtime/fault_dispatch.hh"

#include <csignal>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/logging.hh"
#include "runtime/region.hh"

namespace viyojit::runtime
{

namespace
{

struct RegionEntry
{
    NvRegion *region;
    std::uintptr_t begin;
    std::uintptr_t end;
};

// The registry is read from a signal handler; mutation happens under
// the mutex and swaps are kept simple (small vector, no reallocation
// hazards worth optimizing for the handful of regions a process has).
std::mutex registryLock;
std::vector<RegionEntry> registry;

struct sigaction previousAction;
bool handlerInstalled = false;

void
segvHandler(int signo, siginfo_t *info, void *ucontext)
{
    const auto addr = reinterpret_cast<std::uintptr_t>(info->si_addr);

    // Look up without the lock: entries are only appended/erased under
    // the lock, and a region unregisters before unmapping, so a fault
    // racing an unregister can only miss (and then crash as default).
    for (const RegionEntry &entry : registry) {
        if (addr >= entry.begin && addr < entry.end) {
            if (entry.region->handleFault(info->si_addr))
                return;
        }
    }

    // Not ours: restore and re-raise so the default disposition (or a
    // pre-existing handler) runs.
    if (previousAction.sa_flags & SA_SIGINFO) {
        if (previousAction.sa_sigaction) {
            previousAction.sa_sigaction(signo, info, ucontext);
            return;
        }
    } else if (previousAction.sa_handler != SIG_DFL &&
               previousAction.sa_handler != SIG_IGN &&
               previousAction.sa_handler != nullptr) {
        previousAction.sa_handler(signo);
        return;
    }
    signal(SIGSEGV, SIG_DFL);
    raise(SIGSEGV);
}

void
installHandler()
{
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_sigaction = segvHandler;
    action.sa_flags = SA_SIGINFO;
    sigemptyset(&action.sa_mask);
    if (sigaction(SIGSEGV, &action, &previousAction) != 0)
        panic("failed to install SIGSEGV handler");
    handlerInstalled = true;
}

} // namespace

void
registerRegion(NvRegion *region, void *base, unsigned long long bytes)
{
    std::lock_guard<std::mutex> guard(registryLock);
    if (!handlerInstalled)
        installHandler();
    const auto begin = reinterpret_cast<std::uintptr_t>(base);
    registry.push_back(RegionEntry{region, begin, begin + bytes});
}

void
unregisterRegion(NvRegion *region)
{
    std::lock_guard<std::mutex> guard(registryLock);
    for (auto it = registry.begin(); it != registry.end(); ++it) {
        if (it->region == region) {
            registry.erase(it);
            return;
        }
    }
}

} // namespace viyojit::runtime
