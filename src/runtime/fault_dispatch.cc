#include "runtime/fault_dispatch.hh"

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstring>

#include "common/logging.hh"
#include "common/thread_annotations.hh"
#include "runtime/region.hh"

namespace viyojit::runtime
{

namespace
{

/**
 * Lock-free region registry.
 *
 * The SIGSEGV handler must read the registry without taking a lock
 * (the faulting thread may be anywhere, including inside a region's
 * own locks), so entries live in a fixed array of atomics.  Writers
 * serialize on registryLock; the handler publishes/consumes with
 * release/acquire on the `region` pointer:
 *
 *  - register: store begin/end first, then region (release) — a
 *    handler that sees the pointer sees valid bounds;
 *  - unregister: clear region (release) first — the bounds become
 *    unreachable before the mapping goes away.  A fault racing an
 *    unregister can only miss and crash as default, which is the
 *    pre-existing contract (regions unregister before unmapping).
 */
struct RegionEntry
{
    std::atomic<NvRegion *> region{nullptr};
    std::atomic<std::uintptr_t> begin{0};
    std::atomic<std::uintptr_t> end{0};
};

constexpr unsigned maxRegions = 64;

common::Mutex registryLock;
RegionEntry registry[maxRegions];

/** One past the highest slot ever used; bounds the handler's scan. */
std::atomic<unsigned> registryHigh{0};

/**
 * Written once under registryLock (installHandler) before the first
 * region is live, then read lock-free by the handler.  GUARDED_BY
 * covers every writer; the handler's read is the one deliberate
 * unguarded access and sits inside its NO_THREAD_SAFETY_ANALYSIS —
 * safe because installation strictly precedes any dispatchable
 * fault.
 */
struct sigaction previousAction GUARDED_BY(registryLock);
bool handlerInstalled GUARDED_BY(registryLock) = false;

/**
 * Per-thread alternate fault stack (RAII).  The handler runs real
 * admission work — budget control, copier hand-off, condvar
 * throttling — so it must not depend on the faulting thread having
 * stack headroom left.  SA_ONSTACK moves the handler onto this
 * kFaultStackBytes block wherever one is registered; the pathlint
 * stack-bound contract proves the handler's worst-case depth fits
 * it (DESIGN.md §15).
 *
 * Destruction disarms the alt stack before freeing it so a fault
 * during thread teardown cannot land on freed memory (it falls back
 * to the dying thread's regular stack instead).
 */
struct FaultStack
{
    char *mem = nullptr;
    bool installed = false;

    ~FaultStack()
    {
        if (installed) {
            stack_t off;
            std::memset(&off, 0, sizeof(off));
            off.ss_flags = SS_DISABLE;
            sigaltstack(&off, nullptr);
        }
        delete[] mem;
    }
};

thread_local FaultStack faultStack;

/**
 * Async-signal context: must not take registryLock (the faulting
 * thread may already hold it, or any other lock) and must not
 * allocate — the registry is a fixed array of atomics for exactly
 * this reason, which is also why the static lock analysis is off
 * here.  tools/sigsafe_lint.py audits the handler's transitive
 * call graph for async-signal-unsafe calls.
 */
void
segvHandler(int signo, siginfo_t *info,
            void *ucontext) NO_THREAD_SAFETY_ANALYSIS
{
    const auto addr = reinterpret_cast<std::uintptr_t>(info->si_addr);

    const unsigned high =
        registryHigh.load(std::memory_order_acquire);
    for (unsigned i = 0; i < high; ++i) {
        NvRegion *region =
            registry[i].region.load(std::memory_order_acquire);
        if (!region)
            continue;
        const std::uintptr_t begin =
            registry[i].begin.load(std::memory_order_relaxed);
        const std::uintptr_t end =
            registry[i].end.load(std::memory_order_relaxed);
        if (addr >= begin && addr < end) {
            if (region->handleFault(info->si_addr))
                return;
        }
    }

    // Not ours: restore and re-raise so the default disposition (or a
    // pre-existing handler) runs.
    if (previousAction.sa_flags & SA_SIGINFO) {
        if (previousAction.sa_sigaction) {
            previousAction.sa_sigaction(signo, info, ucontext);
            return;
        }
    } else if (previousAction.sa_handler != SIG_DFL &&
               previousAction.sa_handler != SIG_IGN &&
               previousAction.sa_handler != nullptr) {
        previousAction.sa_handler(signo);
        return;
    }
    signal(SIGSEGV, SIG_DFL);
    raise(SIGSEGV);
}

void
installHandler() REQUIRES(registryLock)
{
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_sigaction = segvHandler;
    // SA_ONSTACK is a no-op for threads without a registered alt
    // stack (the kernel stays on the current stack), so it is safe
    // to request unconditionally.
    action.sa_flags = SA_SIGINFO | SA_ONSTACK;
    sigemptyset(&action.sa_mask);
    if (sigaction(SIGSEGV, &action, &previousAction) != 0)
        panic("failed to install SIGSEGV handler");
    handlerInstalled = true;
}

} // namespace

void
ensureFaultStackForThisThread()
{
    if (faultStack.installed)
        return;
    // Respect an application-installed alt stack: replacing it could
    // shrink an envelope the application sized for its own handlers.
    stack_t current;
    std::memset(&current, 0, sizeof(current));
    if (sigaltstack(nullptr, &current) == 0 &&
        !(current.ss_flags & SS_DISABLE) && current.ss_sp != nullptr)
        return;
    if (kFaultStackBytes <
        static_cast<unsigned long long>(MINSIGSTKSZ))
        panic("kFaultStackBytes below MINSIGSTKSZ");
    faultStack.mem = new char[kFaultStackBytes];
    stack_t ss;
    std::memset(&ss, 0, sizeof(ss));
    ss.ss_sp = faultStack.mem;
    ss.ss_size = kFaultStackBytes;
    if (sigaltstack(&ss, nullptr) != 0)
        panic("failed to install the fault-path sigaltstack");
    faultStack.installed = true;
}

void
registerRegion(NvRegion *region, void *base, unsigned long long bytes)
{
    // The registering thread is about to fault into the region; give
    // it the bounded alt-stack envelope before the first fault can
    // arrive.
    ensureFaultStackForThisThread();
    common::MutexLock guard(registryLock);
    if (!handlerInstalled)
        installHandler();
    const auto begin = reinterpret_cast<std::uintptr_t>(base);
    for (unsigned i = 0; i < maxRegions; ++i) {
        if (registry[i].region.load(std::memory_order_relaxed))
            continue;
        registry[i].begin.store(begin, std::memory_order_relaxed);
        registry[i].end.store(begin + bytes,
                              std::memory_order_relaxed);
        registry[i].region.store(region, std::memory_order_release);
        unsigned high =
            registryHigh.load(std::memory_order_relaxed);
        while (high < i + 1 &&
               !registryHigh.compare_exchange_weak(
                   high, i + 1, std::memory_order_release,
                   std::memory_order_relaxed)) {
        }
        return;
    }
    fatal("too many registered NvRegions (max ", maxRegions, ")");
}

void
unregisterRegion(NvRegion *region)
{
    common::MutexLock guard(registryLock);
    for (unsigned i = 0; i < maxRegions; ++i) {
        if (registry[i].region.load(std::memory_order_relaxed) ==
            region) {
            registry[i].region.store(nullptr,
                                     std::memory_order_release);
            registry[i].begin.store(0, std::memory_order_relaxed);
            registry[i].end.store(0, std::memory_order_relaxed);
            return;
        }
    }
}

} // namespace viyojit::runtime
