#include "runtime/copier_pool.hh"

#include <algorithm>

#include "common/logging.hh"
#include "runtime/fault_dispatch.hh"

namespace viyojit::runtime
{

CopierPool::CopierPool(unsigned threads, unsigned shard_count,
                       unsigned batch, unsigned queue_capacity)
    : queues_(shard_count),
      depth_(shard_count),
      batch_(std::max(batch, 1u)),
      capacity_(queue_capacity)
{
    if (threads == 0)
        fatal("copier pool needs at least one thread");
    if (queue_capacity == 0)
        fatal("copier queues need at least one slot");
    // All ring storage is reserved here, before any fault can
    // submit: the steady-state fault path must not heap-allocate.
    for (Ring &ring : queues_)
        ring.slots.resize(queue_capacity);
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

CopierPool::~CopierPool()
{
    {
        common::MutexLock guard(lock_);
        stopping_ = true;
    }
    work_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
CopierPool::submit(unsigned shard, Job job)
{
    {
        common::MutexLock guard(lock_);
        Ring &ring = queues_[shard];
        if (ring.count == ring.slots.size()) {
            // The submitter's outstanding-IO cap bounds the queue;
            // hitting capacity means that invariant broke.
            fatal("copier queue overflow on shard ", shard,
                  " (capacity ", ring.slots.size(), ")");
        }
        ring.slots[(ring.head + ring.count) % ring.slots.size()] = job;
        ++ring.count;
        ++queued_;
        depth_[shard].store(static_cast<unsigned>(ring.count),
                            std::memory_order_relaxed);
    }
    work_.notify_one();
}

void
CopierPool::workerLoop()
{
    // Copier threads write through the region mapping and can fault;
    // give them the bounded alt-stack envelope (DESIGN.md §15).
    ensureFaultStackForThisThread();
    std::vector<Job> jobs;
    jobs.reserve(batch_);
    for (;;) {
        jobs.clear();
        {
            common::MutexLock guard(lock_);
            work_.wait(lock_, [this]() REQUIRES(lock_) {
                return stopping_ || queued_ > 0;
            });
            if (queued_ == 0) {
                // stopping_ and nothing left: completion callbacks
                // can enqueue follow-on copies, so only exit once the
                // queues are truly drained.
                return;
            }
            // Round-robin over the shard queues so one bursting shard
            // cannot starve the others' writeback.
            for (std::size_t i = 0; i < queues_.size(); ++i) {
                const std::size_t q =
                    (nextShard_ + i) % queues_.size();
                Ring &ring = queues_[q];
                if (ring.count == 0)
                    continue;
                nextShard_ =
                    static_cast<unsigned>((q + 1) % queues_.size());
                // Pop until the PAGE sum reaches the batch target
                // (always at least one job): a coalesced run carries
                // many pages in one slot, and bounding the batch by
                // pages rather than jobs caps the bytes this worker
                // holds in flight per batch.
                std::size_t pages = 0;
                while (ring.count > 0 && pages < batch_) {
                    const Job &job = ring.slots[ring.head];
                    jobs.push_back(job);
                    pages += std::max(job.count, 1u);
                    ring.head = (ring.head + 1) % ring.slots.size();
                    --ring.count;
                    --queued_;
                }
                depth_[q].store(static_cast<unsigned>(ring.count),
                                std::memory_order_relaxed);
                break;
            }
        }
        // Batched submission: all device writes first (no shard lock),
        // then one group durability barrier if the batch carried a
        // run, then all completions (one shard lock acquisition
        // each).  A batch is drawn from a single shard's ring, so
        // every job shares one client and one sync covers them all.
        bool had_run = false;
        for (Job &job : jobs) {
            job.client->copierPersist(job.first, job.count);
            had_run |= job.count > 1;
        }
        if (had_run)
            jobs.front().client->copierSync();
        for (Job &job : jobs)
            job.client->copierComplete(job.first, job.count);
    }
}

} // namespace viyojit::runtime
