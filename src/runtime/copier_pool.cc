#include "runtime/copier_pool.hh"

#include <algorithm>

#include "common/logging.hh"

namespace viyojit::runtime
{

CopierPool::CopierPool(unsigned threads, unsigned shard_count,
                       unsigned batch)
    : queues_(shard_count), batch_(std::max(batch, 1u))
{
    if (threads == 0)
        fatal("copier pool needs at least one thread");
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this]() { workerLoop(); });
}

CopierPool::~CopierPool()
{
    {
        std::lock_guard<std::mutex> guard(lock_);
        stopping_ = true;
    }
    work_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
CopierPool::submit(unsigned shard, Job job)
{
    {
        std::lock_guard<std::mutex> guard(lock_);
        queues_[shard].push_back(std::move(job));
        ++queued_;
    }
    work_.notify_one();
}

void
CopierPool::workerLoop()
{
    std::vector<Job> jobs;
    for (;;) {
        jobs.clear();
        {
            std::unique_lock<std::mutex> lk(lock_);
            work_.wait(lk,
                       [this]() { return stopping_ || queued_ > 0; });
            if (queued_ == 0) {
                // stopping_ and nothing left: completion callbacks
                // can enqueue follow-on copies, so only exit once the
                // queues are truly drained.
                return;
            }
            // Round-robin over the shard queues so one bursting shard
            // cannot starve the others' writeback.
            for (std::size_t i = 0; i < queues_.size(); ++i) {
                const std::size_t q =
                    (nextShard_ + i) % queues_.size();
                if (queues_[q].empty())
                    continue;
                nextShard_ =
                    static_cast<unsigned>((q + 1) % queues_.size());
                const std::size_t take = std::min<std::size_t>(
                    batch_, queues_[q].size());
                for (std::size_t k = 0; k < take; ++k) {
                    jobs.push_back(std::move(queues_[q].front()));
                    queues_[q].pop_front();
                }
                queued_ -= take;
                break;
            }
        }
        // Batched submission: all device writes first (no shard lock),
        // then all completions (one shard lock acquisition each).
        for (Job &job : jobs)
            job.persist();
        for (Job &job : jobs)
            job.complete();
    }
}

} // namespace viyojit::runtime
