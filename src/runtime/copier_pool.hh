/**
 * @file
 * Background copier thread pool for the sharded runtime.
 *
 * The paper's runtime drains proactive copies on a 16-deep device
 * queue; the sharded runtime generalizes that into a small pool of
 * copier threads pulling from per-shard job queues.  A job is a POD
 * (client, page) pair dispatched through the CopierClient interface
 * in two phases so the expensive part runs without any shard lock:
 *
 *   copierPersist   pwrite of the page image — no locks held;
 *   copierComplete  bookkeeping — acquires the owning shard's lock
 *                   internally and notifies waiters.
 *
 * Jobs are POD on purpose: submission happens inside the SIGSEGV
 * admission path, so enqueueing must not heap-allocate (malloc is
 * not async-signal-safe — see tools/sigsafe_lint.py).  Each shard's
 * queue is a fixed-capacity ring sized at construction to the
 * shard's outstanding-IO cap, which the controller never exceeds;
 * overflow is therefore an invariant violation, not backpressure.
 *
 * Workers pop up to `batch` jobs from one shard's queue at a time,
 * run every persist back-to-back (batched SSD submission), then every
 * complete, so the shard lock is touched once per batch instead of
 * once per page.
 *
 * Lock order (region.hh rule 4): the pool's queue lock is a leaf —
 * submit() is called with a shard lock held, and workers never hold
 * the queue lock while running jobs.
 */

#ifndef VIYOJIT_RUNTIME_COPIER_POOL_HH
#define VIYOJIT_RUNTIME_COPIER_POOL_HH

#include <cstdint>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"
#include "common/types.hh"

namespace viyojit::runtime
{

/** Two-phase receiver of copier work (implemented per shard). */
class CopierClient
{
  public:
    virtual ~CopierClient() = default;

    /** Persist the page image; runs with no locks held. */
    virtual void copierPersist(PageNum page) = 0;

    /** Completion bookkeeping; takes the shard lock internally. */
    virtual void copierComplete(PageNum page) = 0;
};

/** Fixed pool of copier threads over per-shard job queues. */
class CopierPool
{
  public:
    /** POD work item; construction and queueing never allocate. */
    struct Job
    {
        CopierClient *client;
        PageNum page;
    };

    /**
     * @param queue_capacity per-shard ring capacity; the submitter
     *        guarantees it never has more jobs queued (the
     *        controller's outstanding-IO cap).
     */
    CopierPool(unsigned threads, unsigned shard_count, unsigned batch,
               unsigned queue_capacity);

    /** Drains every queue, then joins the workers. */
    ~CopierPool();

    CopierPool(const CopierPool &) = delete;
    CopierPool &operator=(const CopierPool &) = delete;

    /** Enqueue a copy job for `shard`.  Safe under a shard lock. */
    void submit(unsigned shard, Job job) EXCLUDES(lock_);

  private:
    /** Fixed-capacity ring: slots are reserved once, never grown. */
    struct Ring
    {
        std::vector<Job> slots;
        std::size_t head = 0;
        std::size_t count = 0;
    };

    void workerLoop() EXCLUDES(lock_);

    common::Mutex lock_;
    common::CondVar work_;
    std::vector<Ring> queues_ GUARDED_BY(lock_);
    const unsigned batch_;
    std::uint64_t queued_ GUARDED_BY(lock_) = 0;
    unsigned nextShard_ GUARDED_BY(lock_) = 0;
    bool stopping_ GUARDED_BY(lock_) = false;
    std::vector<std::thread> workers_;
};

} // namespace viyojit::runtime

#endif // VIYOJIT_RUNTIME_COPIER_POOL_HH
