/**
 * @file
 * Background copier thread pool for the sharded runtime.
 *
 * The paper's runtime drains proactive copies on a 16-deep device
 * queue; the sharded runtime generalizes that into a small pool of
 * copier threads pulling from per-shard job queues.  A job is split
 * into two closures so the expensive part runs without any shard
 * lock:
 *
 *   persist   pwrite of the page image — no locks held;
 *   complete  bookkeeping — acquires the owning shard's lock
 *             internally and notifies waiters.
 *
 * Workers pop up to `batch` jobs from one shard's queue at a time,
 * run every persist back-to-back (batched SSD submission), then every
 * complete, so the shard lock is touched once per batch instead of
 * once per page.
 *
 * Lock order: the pool's queue lock is a leaf — submit() is called
 * with a shard lock held, and workers never hold the queue lock while
 * running jobs.
 */

#ifndef VIYOJIT_RUNTIME_COPIER_POOL_HH
#define VIYOJIT_RUNTIME_COPIER_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace viyojit::runtime
{

/** Fixed pool of copier threads over per-shard job queues. */
class CopierPool
{
  public:
    struct Job
    {
        /** Persist the page image; runs with no locks held. */
        std::function<void()> persist;

        /** Completion bookkeeping; takes the shard lock internally. */
        std::function<void()> complete;
    };

    CopierPool(unsigned threads, unsigned shard_count, unsigned batch);

    /** Drains every queue, then joins the workers. */
    ~CopierPool();

    CopierPool(const CopierPool &) = delete;
    CopierPool &operator=(const CopierPool &) = delete;

    /** Enqueue a copy job for `shard`.  Safe under a shard lock. */
    void submit(unsigned shard, Job job);

  private:
    void workerLoop();

    std::mutex lock_;
    std::condition_variable work_;
    std::vector<std::deque<Job>> queues_;
    const unsigned batch_;
    std::uint64_t queued_ = 0;
    unsigned nextShard_ = 0;
    bool stopping_ = false;
    std::vector<std::thread> workers_;
};

} // namespace viyojit::runtime

#endif // VIYOJIT_RUNTIME_COPIER_POOL_HH
