/**
 * @file
 * Background copier thread pool for the sharded runtime.
 *
 * The paper's runtime drains proactive copies on a 16-deep device
 * queue; the sharded runtime generalizes that into a small pool of
 * copier threads pulling from per-shard job queues.  A job is a POD
 * (client, first, count) run dispatched through the CopierClient
 * interface in two phases so the expensive part runs without any
 * shard lock:
 *
 *   copierPersist   pwrite/pwritev of the run image — no locks held;
 *   copierComplete  bookkeeping — acquires the owning shard's lock
 *                   internally and notifies waiters.
 *
 * Jobs are POD on purpose: submission happens inside the SIGSEGV
 * admission path, so enqueueing must not heap-allocate (malloc is
 * not async-signal-safe — see tools/sigsafe_lint.py).  Each shard's
 * queue is a fixed-capacity ring sized at construction to the
 * shard's outstanding-IO cap, which the controller never exceeds
 * (a run of n pages costs n toward that cap but only one ring slot,
 * so slots-used <= pages-outstanding); overflow is therefore an
 * invariant violation, not backpressure.
 *
 * Workers pop jobs from one shard's queue until the POPPED PAGE SUM
 * reaches `batch` (always at least one job), run every persist
 * back-to-back (batched SSD submission), issue one group sync via
 * copierSync() when the batch carried any multi-page run, then every
 * complete, so the shard lock is touched once per batch instead of
 * once per page.  Bounding the batch by pages rather than jobs caps
 * the bytes a worker holds in flight even when every job is a
 * full-width run.
 *
 * Lock order (region.hh rule 4): the pool's queue lock is a leaf —
 * submit() is called with a shard lock held, and workers never hold
 * the queue lock while running jobs.
 */

#ifndef VIYOJIT_RUNTIME_COPIER_POOL_HH
#define VIYOJIT_RUNTIME_COPIER_POOL_HH

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"
#include "common/types.hh"

namespace viyojit::runtime
{

/** Two-phase receiver of copier work (implemented per shard). */
class CopierClient
{
  public:
    virtual ~CopierClient() = default;

    /** Persist `count` pages from `first`; runs with no locks held. */
    virtual void copierPersist(PageNum first, unsigned count) = 0;

    /**
     * Group durability barrier, issued once per worker batch that
     * contained a multi-page run — after every persist in the batch,
     * before any completion.  Runs with no locks held.
     */
    virtual void copierSync() = 0;

    /** Completion bookkeeping; takes the shard lock internally. */
    virtual void copierComplete(PageNum first, unsigned count) = 0;
};

/** Fixed pool of copier threads over per-shard job queues. */
class CopierPool
{
  public:
    /** POD work item; construction and queueing never allocate. */
    struct Job
    {
        CopierClient *client;
        PageNum first;
        unsigned count;
    };

    /**
     * @param queue_capacity per-shard ring capacity; the submitter
     *        guarantees it never has more jobs queued (the
     *        controller's outstanding-IO cap).
     */
    CopierPool(unsigned threads, unsigned shard_count, unsigned batch,
               unsigned queue_capacity);

    /** Drains every queue, then joins the workers. */
    ~CopierPool();

    CopierPool(const CopierPool &) = delete;
    CopierPool &operator=(const CopierPool &) = delete;

    /** Enqueue a copy job for `shard`.  Safe under a shard lock. */
    void submit(unsigned shard, Job job) EXCLUDES(lock_);

    /**
     * True when `shard`'s ring is at least 3/4 occupied.  A single
     * relaxed atomic load — no lock, no allocation — so the SIGSEGV
     * admission path can consult it before choosing the run path:
     * a backlogged ring means a wide run (and its group sync) would
     * serialize behind queued work, so the submitter falls back to
     * per-page jobs instead.  Advisory only: the depth gauge may lag
     * the ring by a few slots, which at worst flips the heuristic.
     */
    bool
    nearCapacity(unsigned shard) const
    {
        return depth_[shard].load(std::memory_order_relaxed) * 4 >=
               capacity_ * 3;
    }

  private:
    /** Fixed-capacity ring: slots are reserved once, never grown. */
    struct Ring
    {
        std::vector<Job> slots;
        std::size_t head = 0;
        std::size_t count = 0;
    };

    void workerLoop() EXCLUDES(lock_);

    common::Mutex lock_;
    common::CondVar work_;
    std::vector<Ring> queues_ GUARDED_BY(lock_);

    /**
     * Per-shard queued-job gauge mirroring Ring::count, readable
     * without the queue lock (see nearCapacity).  Updated inside the
     * locked sections so it never drifts from the ring by more than
     * the in-flight critical sections.
     */
    std::vector<std::atomic<unsigned>> depth_;

    const unsigned batch_;
    const unsigned capacity_;
    std::uint64_t queued_ GUARDED_BY(lock_) = 0;
    unsigned nextShard_ GUARDED_BY(lock_) = 0;
    bool stopping_ GUARDED_BY(lock_) = false;
    std::vector<std::thread> workers_;
};

} // namespace viyojit::runtime

#endif // VIYOJIT_RUNTIME_COPIER_POOL_HH
