#include "common/table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <sstream>

namespace viyojit
{

Table::Table(std::string title)
    : title_(std::move(title))
{
}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
Table::fmt(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
Table::fmt(std::uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    int from_right = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (from_right > 0 && from_right % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++from_right;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
Table::pct(double fraction, int precision)
{
    return fmt(fraction * 100.0, precision) + "%";
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &row) {
        if (row.size() > widths.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i)
            widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto &row : rows_)
        widen(row);

    if (!title_.empty())
        os << "== " << title_ << " ==\n";

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < row.size() ? row[i] : "";
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << cell;
        }
        os << "\n";
    };
    emit(header_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
    os.flush();
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (i)
                os << ",";
            os << row[i];
        }
        os << "\n";
    };
    emit(header_);
    for (const auto &row : rows_)
        emit(row);
    os.flush();
}

} // namespace viyojit
