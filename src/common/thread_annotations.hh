/**
 * @file
 * Clang Thread Safety Analysis annotations + annotated lock types.
 *
 * The concurrency contracts of the sharded runtime (region.hh's lock
 * ordering, DESIGN.md section 8) are encoded with these macros so a
 * clang build with `-Wthread-safety -Wthread-safety-beta -Werror`
 * rejects code that touches guarded state without its lock, acquires
 * locks against the declared order, or calls a REQUIRES function
 * unheld.  Under compilers without the attributes (gcc) every macro
 * expands to nothing and the annotated types degrade to plain
 * std::mutex behaviour — the annotations are contracts, not code.
 *
 * The macro names follow the canonical Clang documentation header
 * (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) so the
 * vocabulary matches the upstream docs, tutorials, and the negative
 * compile suite in tests/annotations_negcompile/.
 *
 * Clang's analysis does not model std::mutex with libstdc++, so the
 * runtime locks through the annotated wrappers below:
 *
 *   Mutex      an annotated std::mutex (a CAPABILITY);
 *   MutexLock  the scoped guard (SCOPED_CAPABILITY), replacing
 *              std::lock_guard;
 *   CondVar    a condition variable whose wait() REQUIRES the Mutex
 *              and internally performs the adopt-and-release dance
 *              the runtime needs (a wait must temporarily release
 *              the caller's shard lock — see region.hh).
 */

#ifndef VIYOJIT_COMMON_THREAD_ANNOTATIONS_HH
#define VIYOJIT_COMMON_THREAD_ANNOTATIONS_HH

#include <condition_variable>
#include <mutex>
#include <utility>

#if defined(__clang__)
#define VIYOJIT_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define VIYOJIT_THREAD_ANNOTATION__(x) // no-op outside clang
#endif

/** Marks a class as a lockable capability (mutexes, roles). */
#define CAPABILITY(x) VIYOJIT_THREAD_ANNOTATION__(capability(x))

/** Marks an RAII class that acquires in its ctor / releases in dtor. */
#define SCOPED_CAPABILITY VIYOJIT_THREAD_ANNOTATION__(scoped_lockable)

/** Data member readable/writable only while holding `x`. */
#define GUARDED_BY(x) VIYOJIT_THREAD_ANNOTATION__(guarded_by(x))

/** Pointer member whose *pointee* is guarded by `x`. */
#define PT_GUARDED_BY(x) VIYOJIT_THREAD_ANNOTATION__(pt_guarded_by(x))

/** Lock-order declaration: this lock is acquired before `...`. */
#define ACQUIRED_BEFORE(...) \
    VIYOJIT_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))

/** Lock-order declaration: this lock is acquired after `...`. */
#define ACQUIRED_AFTER(...) \
    VIYOJIT_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/** Function precondition: caller holds every capability listed. */
#define REQUIRES(...) \
    VIYOJIT_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/** Function precondition: caller holds shared (reader) access. */
#define REQUIRES_SHARED(...) \
    VIYOJIT_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/** Function acquires the capability and holds it on return. */
#define ACQUIRE(...) \
    VIYOJIT_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/** Function releases a capability the caller held. */
#define RELEASE(...) \
    VIYOJIT_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/** Function acquires the capability iff it returns `ret`. */
#define TRY_ACQUIRE(ret, ...) \
    VIYOJIT_THREAD_ANNOTATION__(try_acquire_capability(ret, __VA_ARGS__))

/** Function precondition: caller must NOT hold the capability. */
#define EXCLUDES(...) \
    VIYOJIT_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/** Runtime-checked assertion that the capability is held. */
#define ASSERT_CAPABILITY(x) \
    VIYOJIT_THREAD_ANNOTATION__(assert_capability(x))

/** Function returns a reference to the named capability. */
#define RETURN_CAPABILITY(x) \
    VIYOJIT_THREAD_ANNOTATION__(lock_returned(x))

/**
 * Escape hatch: the function's locking is beyond the static model
 * (e.g. the all-shards ascending sweep over a dynamic lock set).
 * Every use carries a comment justifying why, and names the runtime
 * check (TSan suite, torture harness) that covers the gap.
 */
#define NO_THREAD_SAFETY_ANALYSIS \
    VIYOJIT_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace viyojit::common
{

/**
 * std::mutex as an annotated capability.  All runtime locks
 * (region retune mutex, shard locks, copier queue, fault-dispatch
 * registry, budget-pool retune) are this type, so clang can see
 * every acquisition.
 */
class CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() ACQUIRE() { m_.lock(); }
    void unlock() RELEASE() { m_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

    /**
     * The wrapped handle, for the rare code that must talk to the
     * native mutex (CondVar's adopt-and-release wait).  Holding the
     * native handle is invisible to the analysis — callers document
     * the hold with assertHeld() or NO_THREAD_SAFETY_ANALYSIS.
     */
    std::mutex &native() { return m_; }

    /**
     * Tell the analysis the capability is held from here to the end
     * of the scope (no runtime effect).  For code that provably
     * holds the lock through a channel the analysis cannot see.
     */
    void assertHeld() const ASSERT_CAPABILITY(this) {}

  private:
    std::mutex m_;
};

/** Scoped acquisition of a Mutex (the std::lock_guard analogue). */
class SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mutex) ACQUIRE(mutex) : mutex_(mutex)
    {
        mutex_.lock();
    }

    ~MutexLock() RELEASE() { mutex_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mutex_;
};

/**
 * Condition variable over an annotated Mutex.
 *
 * wait() REQUIRES the mutex and — like every condition wait —
 * releases it while blocked and re-holds it on return, which is
 * exactly what the analysis expects of a REQUIRES function.  The
 * implementation adopts the caller's hold into a std::unique_lock
 * for the duration of the wait and releases ownership back on exit,
 * so it composes with MutexLock (and is the reason the runtime's
 * locks must wrap a plain std::mutex — see region.hh's lock-ordering
 * notes).
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    template <typename Predicate>
    void
    wait(Mutex &mutex, Predicate predicate) REQUIRES(mutex)
    {
        std::unique_lock<std::mutex> adopted(mutex.native(),
                                             std::adopt_lock);
        cv_.wait(adopted, std::move(predicate));
        adopted.release();
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace viyojit::common

#endif // VIYOJIT_COMMON_THREAD_ANNOTATIONS_HH
