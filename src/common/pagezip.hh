/**
 * @file
 * Dependency-free LZ-class page codec for the copy-out path.
 *
 * Flush energy is joules-per-byte while the dirty budget is counted
 * in pages, so shrinking the bytes a victim page costs on the wire
 * directly multiplies the admissible budget (DESIGN.md §11).  The
 * codec is built for that one job:
 *
 *   - byte-oriented LZ with greedy hash-chain matching: a token byte
 *     (literal-length nibble / match-length nibble, 15 = extended by
 *     255-continuation bytes), the literals, a 2-byte little-endian
 *     match distance, overlap-permitted matches of 4+ bytes;
 *   - bounded worst-case output (pagezipBound), so callers size one
 *     scratch buffer at construction and never reallocate;
 *   - an incompressible-page bypass: compress() reports "store raw"
 *     whenever the achieved ratio falls under ~1.05, so random pages
 *     cost one memcpy-free size probe and zero format overhead;
 *   - a strict decoder: every length and distance is bounds-checked,
 *     truncated or corrupted streams fail cleanly (false) without
 *     reading or writing out of bounds, and success requires the
 *     output to land exactly on the expected raw length.
 *
 * The decoder alone cannot catch every corruption (a damaged stream
 * can still decode to plausible bytes); durability surfaces keep the
 * CRC32C over the RAW page and verify it after decompression, so a
 * lying device is caught either by the decoder or by the checksum.
 *
 * ASYNC-SIGNAL-SAFETY: this codec is NOT fault-path code.  Compression
 * belongs to copier threads and the simulator only; tools/
 * sigsafe_lint.py hard-fails (no allowlist escape) if any pagezip
 * symbol becomes reachable from the SIGSEGV handler.
 */

#ifndef VIYOJIT_COMMON_PAGEZIP_HH
#define VIYOJIT_COMMON_PAGEZIP_HH

#include <cstddef>
#include <cstdint>

namespace viyojit::common
{

/**
 * Worst-case encoded size for `len` input bytes.  Callers must hand
 * pagezipCompress a destination at least this large.
 */
constexpr std::size_t
pagezipBound(std::size_t len)
{
    return len + len / 255 + 16;
}

/**
 * Compress `len` bytes of `src` into `dst` (capacity `dst_cap`,
 * >= pagezipBound(len)).
 *
 * @return the encoded size in bytes, or 0 for "store raw": the input
 *         was too small, the destination too small, or the achieved
 *         ratio under the ~1.05 bypass threshold (storing the raw
 *         page costs less than the decode would ever save).
 */
std::size_t pagezipCompress(const void *src, std::size_t len,
                            void *dst, std::size_t dst_cap);

/**
 * Decompress a `stored_len`-byte stream produced by pagezipCompress
 * into exactly `raw_len` bytes at `dst`.
 *
 * @return true on success.  False on any malformed input — truncated
 *         stream, distance past the produced output, lengths that
 *         overrun either buffer, trailing garbage, or output that
 *         does not land exactly on `raw_len`.  On failure the dst
 *         contents are unspecified but no out-of-bounds access has
 *         occurred; callers classify the page into their quarantine
 *         machinery.
 */
bool pagezipDecompress(const void *src, std::size_t stored_len,
                       void *dst, std::size_t raw_len);

} // namespace viyojit::common

#endif // VIYOJIT_COMMON_PAGEZIP_HH
