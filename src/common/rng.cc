#include "common/rng.hh"

#include <cmath>

#include "common/logging.hh"

namespace viyojit
{

namespace
{

/** SplitMix64 step, used only for seeding. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::nextDouble()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t
Rng::nextBounded(std::uint64_t bound)
{
    VIYOJIT_ASSERT(bound > 0, "nextBounded requires bound > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::nextInRange(std::uint64_t lo, std::uint64_t hi)
{
    VIYOJIT_ASSERT(lo <= hi, "nextInRange requires lo <= hi");
    return lo + nextBounded(hi - lo + 1);
}

bool
Rng::nextBool(double p)
{
    return nextDouble() < p;
}

double
Rng::nextExponential(double mean)
{
    double u = nextDouble();
    // Guard against log(0).
    if (u <= 0.0)
        u = 0x1.0p-53;
    return -mean * std::log(u);
}

double
Rng::nextGaussian(double mean, double stddev)
{
    if (haveSpareGaussian_) {
        haveSpareGaussian_ = false;
        return mean + stddev * spareGaussian_;
    }
    double u;
    double v;
    double s;
    do {
        u = 2.0 * nextDouble() - 1.0;
        v = 2.0 * nextDouble() - 1.0;
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spareGaussian_ = v * mul;
    haveSpareGaussian_ = true;
    return mean + stddev * u * mul;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa5a5a5a5a5a5a5a5ULL);
}

} // namespace viyojit
