/**
 * @file
 * ASCII table and CSV emitters for benchmark output.
 *
 * Every bench binary prints its figure/table as a Table so the output
 * can be compared directly against the paper and also machine-parsed
 * (the CSV form) by plotting scripts.
 */

#ifndef VIYOJIT_COMMON_TABLE_HH
#define VIYOJIT_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace viyojit
{

/** Column-aligned ASCII table with an optional title and CSV dump. */
class Table
{
  public:
    explicit Table(std::string title = "");

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a row of pre-formatted cells. */
    void addRow(std::vector<std::string> row);

    /** Format a double with the given precision. */
    static std::string fmt(double v, int precision = 2);

    /** Format an integer with thousands grouping. */
    static std::string fmt(std::uint64_t v);

    /** Format a percentage ("12.3%"). */
    static std::string pct(double fraction, int precision = 1);

    /** Render as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Render as CSV (header + rows). */
    void printCsv(std::ostream &os) const;

    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace viyojit

#endif // VIYOJIT_COMMON_TABLE_HH
