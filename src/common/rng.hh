/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic components in the library draw from Rng so that every
 * experiment is reproducible from a single seed.  The generator is
 * xoshiro256** (Blackman & Vigna) seeded through SplitMix64.
 */

#ifndef VIYOJIT_COMMON_RNG_HH
#define VIYOJIT_COMMON_RNG_HH

#include <array>
#include <cstdint>

namespace viyojit
{

/**
 * xoshiro256** pseudo-random generator with convenience draws.
 *
 * Satisfies the UniformRandomBitGenerator concept so it can also be
 * plugged into <random> distributions where needed.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    /** Next raw 64-bit draw. */
    std::uint64_t operator()() { return next(); }

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Uniform integer in [0, bound) for bound > 0. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextInRange(std::uint64_t lo, std::uint64_t hi);

    /** Bernoulli draw with probability p of true. */
    bool nextBool(double p);

    /** Exponentially distributed double with the given mean. */
    double nextExponential(double mean);

    /** Gaussian draw (Box-Muller) with given mean and stddev. */
    double nextGaussian(double mean, double stddev);

    /** Fork an independent stream (for per-thread determinism). */
    Rng split();

  private:
    std::array<std::uint64_t, 4> state_;
    bool haveSpareGaussian_ = false;
    double spareGaussian_ = 0.0;
};

} // namespace viyojit

#endif // VIYOJIT_COMMON_RNG_HH
