#include "common/pagezip.hh"

#include <cstring>

namespace viyojit::common
{

namespace
{

constexpr unsigned kHashLog = 12;
constexpr std::size_t kMinMatch = 4;

/** Matches never start inside the final tail: the 4-byte hash load
 *  needs kMinMatch bytes and the extension loop stops short of the
 *  end, so the last bytes of a page are always literals. */
constexpr std::size_t kMatchTail = 12;

/** Bypass threshold: accept the encoding only when
 *  stored * 21 <= raw * 20, i.e. a ratio of at least 1.05. */
constexpr std::size_t kBypassNum = 21;
constexpr std::size_t kBypassDen = 20;

inline std::uint32_t
load32(const std::uint8_t *p)
{
    std::uint32_t v;
    std::memcpy(&v, p, sizeof(v));
    return v;
}

inline std::uint32_t
hash32(std::uint32_t v)
{
    return (v * 2654435761u) >> (32 - kHashLog);
}

} // namespace

std::size_t
pagezipCompress(const void *src_v, std::size_t len, void *dst_v,
                std::size_t dst_cap)
{
    const auto *src = static_cast<const std::uint8_t *>(src_v);
    auto *dst = static_cast<std::uint8_t *>(dst_v);
    if (len < 32 || dst_cap < pagezipBound(len))
        return 0;

    // Position-plus-one per hash bucket; 0 marks an empty bucket, so
    // no separate initialization sentinel is needed.
    std::uint32_t table[1u << kHashLog];
    std::memset(table, 0, sizeof(table));

    const std::uint8_t *ip = src;
    const std::uint8_t *anchor = src;
    const std::uint8_t *const iend = src + len;
    const std::uint8_t *const mflimit = iend - kMatchTail;
    std::uint8_t *op = dst;
    std::uint8_t *const oend = dst + dst_cap;

    const auto emitLength = [&](std::size_t extra) {
        while (extra >= 255) {
            *op++ = 255;
            extra -= 255;
        }
        *op++ = static_cast<std::uint8_t>(extra);
    };

    while (ip < mflimit) {
        const std::uint32_t h = hash32(load32(ip));
        const std::uint32_t prev = table[h];
        table[h] = static_cast<std::uint32_t>(ip - src) + 1;
        const std::uint8_t *ref = src + prev - 1;
        if (prev == 0 ||
            static_cast<std::size_t>(ip - ref) > 0xFFFF ||
            load32(ref) != load32(ip)) {
            ++ip;
            continue;
        }

        // Extend the match, keeping the final bytes literal so the
        // closing sequence always exists.
        std::size_t mlen = kMinMatch;
        const std::uint8_t *const mend = iend - 5;
        while (ip + mlen < mend && ref[mlen] == ip[mlen])
            ++mlen;

        const std::size_t lit =
            static_cast<std::size_t>(ip - anchor);
        const std::size_t dist = static_cast<std::size_t>(ip - ref);

        // Worst-case sequence size; bail to bypass rather than
        // overrun (cannot happen inside the bound, kept as a guard).
        if (op + 1 + lit + lit / 255 + 1 + 2 + mlen / 255 + 1 > oend)
            return 0;

        const std::uint8_t lit_nibble =
            static_cast<std::uint8_t>(lit < 15 ? lit : 15);
        const std::size_t mcode = mlen - kMinMatch;
        const std::uint8_t match_nibble =
            static_cast<std::uint8_t>(mcode < 15 ? mcode : 15);
        *op++ = static_cast<std::uint8_t>((lit_nibble << 4) |
                                          match_nibble);
        if (lit >= 15)
            emitLength(lit - 15);
        std::memcpy(op, anchor, lit);
        op += lit;
        *op++ = static_cast<std::uint8_t>(dist & 0xFF);
        *op++ = static_cast<std::uint8_t>(dist >> 8);
        if (mcode >= 15)
            emitLength(mcode - 15);

        ip += mlen;
        anchor = ip;
        if (ip < mflimit)
            table[hash32(load32(ip - 2))] =
                static_cast<std::uint32_t>(ip - 2 - src) + 1;
    }

    // Final sequence: remaining literals, match nibble 0, no offset.
    const std::size_t lit = static_cast<std::size_t>(iend - anchor);
    if (op + 1 + lit + lit / 255 + 1 > oend)
        return 0;
    *op++ = static_cast<std::uint8_t>((lit < 15 ? lit : 15) << 4);
    if (lit >= 15)
        emitLength(lit - 15);
    std::memcpy(op, anchor, lit);
    op += lit;

    const std::size_t out = static_cast<std::size_t>(op - dst);
    if (out * kBypassNum > len * kBypassDen)
        return 0;
    return out;
}

bool
pagezipDecompress(const void *src_v, std::size_t stored_len,
                  void *dst_v, std::size_t raw_len)
{
    const auto *ip = static_cast<const std::uint8_t *>(src_v);
    auto *dst = static_cast<std::uint8_t *>(dst_v);
    const std::uint8_t *const iend = ip + stored_len;
    std::uint8_t *op = dst;
    std::uint8_t *const oend = dst + raw_len;
    if (stored_len == 0)
        return false;

    for (;;) {
        if (ip >= iend)
            return false;
        const unsigned token = *ip++;

        std::size_t lit = token >> 4;
        if (lit == 15) {
            unsigned b;
            do {
                if (ip >= iend)
                    return false;
                b = *ip++;
                lit += b;
            } while (b == 255);
        }
        if (lit > static_cast<std::size_t>(iend - ip) ||
            lit > static_cast<std::size_t>(oend - op))
            return false;
        std::memcpy(op, ip, lit);
        op += lit;
        ip += lit;

        if (ip == iend)
            return (token & 0xF) == 0 && op == oend;

        if (iend - ip < 2)
            return false;
        const std::size_t dist =
            static_cast<std::size_t>(ip[0]) |
            (static_cast<std::size_t>(ip[1]) << 8);
        ip += 2;
        if (dist == 0 || dist > static_cast<std::size_t>(op - dst))
            return false;

        std::size_t mlen = (token & 0xF) + kMinMatch;
        if ((token & 0xF) == 15) {
            unsigned b;
            do {
                if (ip >= iend)
                    return false;
                b = *ip++;
                mlen += b;
            } while (b == 255);
        }
        if (mlen > static_cast<std::size_t>(oend - op))
            return false;

        // Byte-wise copy: distances shorter than the match length
        // are legal (run replication) and must replicate in order.
        const std::uint8_t *match = op - dist;
        for (std::size_t i = 0; i < mlen; ++i)
            op[i] = match[i];
        op += mlen;
    }
}

} // namespace viyojit::common
