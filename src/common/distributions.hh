/**
 * @file
 * Request-distribution samplers used by the YCSB driver and the
 * synthetic trace generators.
 *
 * The Zipfian sampler follows the incremental method of Gray et al.
 * ("Quickly generating billion-record synthetic databases"), which is
 * also what the reference YCSB implementation uses; ScrambledZipfian
 * hashes the popular items across the key space; Latest skews toward
 * the most recently inserted item.
 */

#ifndef VIYOJIT_COMMON_DISTRIBUTIONS_HH
#define VIYOJIT_COMMON_DISTRIBUTIONS_HH

#include <cstdint>
#include <memory>

#include "common/rng.hh"

namespace viyojit
{

/** Abstract sampler over a growable integer item space. */
class IntegerDistribution
{
  public:
    virtual ~IntegerDistribution() = default;

    /** Draw the next item in [0, itemCount). */
    virtual std::uint64_t next(Rng &rng) = 0;

    /** Grow the item space (after inserts). */
    virtual void setItemCount(std::uint64_t n) = 0;

    /** Current item-space size. */
    virtual std::uint64_t itemCount() const = 0;
};

/** Uniform sampler over [0, n). */
class UniformDistribution : public IntegerDistribution
{
  public:
    explicit UniformDistribution(std::uint64_t n);

    std::uint64_t next(Rng &rng) override;
    void setItemCount(std::uint64_t n) override;
    std::uint64_t itemCount() const override { return count_; }

  private:
    std::uint64_t count_;
};

/**
 * Zipfian sampler over [0, n) with exponent theta (default 0.99, the
 * YCSB constant).  Item 0 is the most popular.
 */
class ZipfianDistribution : public IntegerDistribution
{
  public:
    static constexpr double defaultTheta = 0.99;

    ZipfianDistribution(std::uint64_t n, double theta = defaultTheta);

    std::uint64_t next(Rng &rng) override;
    void setItemCount(std::uint64_t n) override;
    std::uint64_t itemCount() const override { return count_; }

    double theta() const { return theta_; }

  private:
    void recompute();

    /**
     * Generalized harmonic normalizer sum_{i=1..n} 1/i^theta,
     * extended incrementally from the last computed point and backed
     * by a small cache so repeated growth (inserts) and repeated
     * experiment construction stay cheap even for huge n.
     */
    double zeta(std::uint64_t n);

    std::uint64_t count_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    double zeta2Theta_;

    /** Incremental-zeta state: zeta(lastZetaN_) == lastZeta_. */
    std::uint64_t lastZetaN_ = 0;
    double lastZeta_ = 0.0;
};

/**
 * Zipfian sampler whose popular items are scattered over the item
 * space via FNV hashing, as in YCSB's ScrambledZipfianGenerator.
 */
class ScrambledZipfianDistribution : public IntegerDistribution
{
  public:
    explicit ScrambledZipfianDistribution(
        std::uint64_t n, double theta = ZipfianDistribution::defaultTheta);

    std::uint64_t next(Rng &rng) override;
    void setItemCount(std::uint64_t n) override;
    std::uint64_t itemCount() const override { return count_; }

  private:
    std::uint64_t count_;
    ZipfianDistribution inner_;
};

/**
 * Zipfian sampler whose *skew profile* comes from a larger virtual
 * population: ranks are drawn from Zipf over (n << scale_shift)
 * items and folded down by the same shift, then scattered by
 * hashing.
 *
 * Purpose: Zipf mass concentrates more as the population grows (the
 * paper's figure 5), so a downscaled experiment sampling a plain
 * Zipf over its small population *understates* the skew the paper's
 * full-size dataset has.  Folding a paper-scale Zipf onto the scaled
 * population gives each scaled item the aggregate mass of its
 * full-scale rank block, preserving coverage fractions.
 */
class ScaledZipfianDistribution : public IntegerDistribution
{
  public:
    ScaledZipfianDistribution(
        std::uint64_t n, unsigned scale_shift,
        double theta = ZipfianDistribution::defaultTheta);

    std::uint64_t next(Rng &rng) override;
    void setItemCount(std::uint64_t n) override;
    std::uint64_t itemCount() const override { return count_; }

  private:
    std::uint64_t count_;
    unsigned scaleShift_;
    ZipfianDistribution inner_;
};

/**
 * "Latest" sampler: zipfian over recency, so the most recently
 * inserted item is the most popular (YCSB workload D).
 */
class LatestDistribution : public IntegerDistribution
{
  public:
    explicit LatestDistribution(
        std::uint64_t n, double theta = ZipfianDistribution::defaultTheta);

    std::uint64_t next(Rng &rng) override;
    void setItemCount(std::uint64_t n) override;
    std::uint64_t itemCount() const override { return count_; }

  private:
    std::uint64_t count_;
    ZipfianDistribution inner_;
};

/**
 * Hotspot sampler: hotFraction of draws hit the first hotSetFraction
 * of the space uniformly; the rest hit the remainder uniformly.  Used
 * by trace generators to model the "80/20"-style volumes.
 */
class HotspotDistribution : public IntegerDistribution
{
  public:
    HotspotDistribution(std::uint64_t n, double hot_set_fraction,
                        double hot_draw_fraction);

    std::uint64_t next(Rng &rng) override;
    void setItemCount(std::uint64_t n) override;
    std::uint64_t itemCount() const override { return count_; }

  private:
    std::uint64_t count_;
    double hotSetFraction_;
    double hotDrawFraction_;
};

/** 64-bit FNV-1a hash (used for key scrambling). */
std::uint64_t fnv1aHash64(std::uint64_t value);

} // namespace viyojit

#endif // VIYOJIT_COMMON_DISTRIBUTIONS_HH
