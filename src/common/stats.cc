#include "common/stats.hh"

#include <algorithm>

namespace viyojit
{

void
Gauge::set(std::int64_t v)
{
    value_ = v;
    highWatermark_ = std::max(highWatermark_, v);
}

void
Gauge::reset()
{
    value_ = 0;
    highWatermark_ = 0;
}

Counter &
StatsRegistry::counter(const std::string &name)
{
    return counters_[name];
}

Gauge &
StatsRegistry::gauge(const std::string &name)
{
    return gauges_[name];
}

std::uint64_t
StatsRegistry::counterValue(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
}

std::int64_t
StatsRegistry::gaugeValue(const std::string &name) const
{
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second.value();
}

void
StatsRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters_)
        os << name << " " << c.value() << "\n";
    for (const auto &[name, g] : gauges_) {
        os << name << " " << g.value()
           << " (hwm " << g.highWatermark() << ")\n";
    }
}

void
StatsRegistry::resetAll()
{
    for (auto &[name, c] : counters_)
        c.reset();
    for (auto &[name, g] : gauges_)
        g.reset();
}

} // namespace viyojit
