/**
 * @file
 * Lightweight named-statistics registry.
 *
 * Every subsystem registers counters and gauges with a StatsRegistry;
 * benches and tests read them back by name.  This mirrors the role of
 * a simulator stats package without pulling in a framework.
 */

#ifndef VIYOJIT_COMMON_STATS_HH
#define VIYOJIT_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace viyojit
{

/** Monotonic event counter. */
class Counter
{
  public:
    void increment(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Instantaneous value with high-watermark tracking. */
class Gauge
{
  public:
    void set(std::int64_t v);
    void add(std::int64_t delta) { set(value_ + delta); }
    std::int64_t value() const { return value_; }
    std::int64_t highWatermark() const { return highWatermark_; }
    void reset();

  private:
    std::int64_t value_ = 0;
    std::int64_t highWatermark_ = 0;
};

/**
 * Name -> stat registry.  Stats are owned by the registry and live as
 * long as it does; callers hold references.
 */
class StatsRegistry
{
  public:
    /** Get or create a counter with the given dotted name. */
    Counter &counter(const std::string &name);

    /** Get or create a gauge with the given dotted name. */
    Gauge &gauge(const std::string &name);

    /** Read a counter (0 when absent). */
    std::uint64_t counterValue(const std::string &name) const;

    /** Read a gauge (0 when absent). */
    std::int64_t gaugeValue(const std::string &name) const;

    /** Dump all stats, sorted by name. */
    void dump(std::ostream &os) const;

    /** Reset every stat to zero. */
    void resetAll();

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
};

} // namespace viyojit

#endif // VIYOJIT_COMMON_STATS_HH
