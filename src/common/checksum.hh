/**
 * @file
 * Shared CRC32C (Castagnoli) — the one checksum every durability
 * surface uses: flush-commit sidecars (sim and mprotect runtime),
 * plog record integrity, recovery verification, and the scrubber.
 *
 * Async-signal-safety contract: crc32c() is called from the SIGSEGV
 * fault path (inline persist -> sidecar commit), so it must stay
 * allocation-free, lock-free, and guard-variable-free.  The slice
 * tables are constinit namespace-scope constants — no lazy init, no
 * __cxa_guard_acquire.  tools/sigsafe_lint.py walks this TU.
 */

#ifndef VIYOJIT_COMMON_CHECKSUM_HH
#define VIYOJIT_COMMON_CHECKSUM_HH

#include <cstddef>
#include <cstdint>

namespace viyojit::common
{

/**
 * CRC32C (polynomial 0x1EDC6F41, reflected 0x82F63B78) over `len`
 * bytes.  `seed` chains incremental computation:
 * crc32c(a+b) == crc32c(b, len_b, crc32c(a, len_a)).
 * Known-answer vector: crc32c("123456789", 9) == 0xE3069283.
 */
std::uint32_t crc32c(const void *data, std::size_t len,
                     std::uint32_t seed = 0);

/** CRC32C of a 64-bit value (little-endian byte order), chained. */
std::uint32_t crc32cU64(std::uint64_t value, std::uint32_t seed = 0);

} // namespace viyojit::common

#endif // VIYOJIT_COMMON_CHECKSUM_HH
