/**
 * @file
 * Latency and value histograms.
 *
 * LogHistogram buckets values by log2 with linear sub-buckets, giving
 * bounded relative error on percentile queries (HDR-histogram style)
 * while staying allocation-free after construction.
 */

#ifndef VIYOJIT_COMMON_HISTOGRAM_HH
#define VIYOJIT_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <vector>

namespace viyojit
{

/**
 * Log-bucketed histogram over uint64 values with percentile queries.
 */
class LogHistogram
{
  public:
    /** @param sub_bucket_bits linear sub-buckets per power of two. */
    explicit LogHistogram(int sub_bucket_bits = 5);

    /** Record one observation. */
    void record(std::uint64_t value);

    /** Record an observation with a repeat count. */
    void record(std::uint64_t value, std::uint64_t count);

    /** Number of recorded observations. */
    std::uint64_t count() const { return count_; }

    /** Sum of recorded values (exact). */
    std::uint64_t sum() const { return sum_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const;

    /** Smallest recorded value; 0 when empty. */
    std::uint64_t minValue() const { return count_ ? min_ : 0; }

    /** Largest recorded value; 0 when empty. */
    std::uint64_t maxValue() const { return count_ ? max_ : 0; }

    /**
     * Value at the given percentile in [0, 100]; returns an upper
     * bucket bound, so the result is >= the true percentile and within
     * one sub-bucket of it.  0 when empty.
     */
    std::uint64_t percentile(double p) const;

    /** Merge another histogram into this one. */
    void merge(const LogHistogram &other);

    /** Discard all observations. */
    void reset();

  private:
    std::size_t bucketIndex(std::uint64_t value) const;
    std::uint64_t bucketUpperBound(std::size_t index) const;

    int subBucketBits_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ULL;
    std::uint64_t max_ = 0;
};

/** Fixed-width linear histogram for bounded-range values. */
class LinearHistogram
{
  public:
    LinearHistogram(std::uint64_t lo, std::uint64_t hi,
                    std::size_t bucket_count);

    void record(std::uint64_t value);

    std::uint64_t count() const { return count_; }
    std::size_t bucketCount() const { return buckets_.size(); }
    std::uint64_t bucketValue(std::size_t i) const { return buckets_[i]; }

    /** Inclusive lower edge of bucket i. */
    std::uint64_t bucketLo(std::size_t i) const;

    void reset();

  private:
    std::uint64_t lo_;
    std::uint64_t hi_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
};

} // namespace viyojit

#endif // VIYOJIT_COMMON_HISTOGRAM_HH
