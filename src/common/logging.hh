/**
 * @file
 * Minimal gem5-flavoured logging: panic/fatal/warn/inform.
 *
 * panic() is for internal invariant violations (library bugs); it
 * aborts.  fatal() is for unrecoverable user/configuration errors; it
 * throws FatalError so tests can assert on misconfiguration.  warn()
 * and inform() are advisory and never stop execution.
 */

#ifndef VIYOJIT_COMMON_LOGGING_HH
#define VIYOJIT_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>

namespace viyojit
{

/** Thrown by fatal() so that configuration errors are testable. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

namespace detail
{

/** Stream-compose a message from variadic parts. */
template <typename... Args>
std::string
composeMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Global log verbosity: 0 = silent, 1 = warn, 2 = inform. */
int logVerbosity();

/** Set global log verbosity; returns the previous value. */
int setLogVerbosity(int level);

/** Abort on an internal invariant violation. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::string msg = detail::composeMessage(std::forward<Args>(args)...);
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

/** Raise an unrecoverable user/configuration error. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::composeMessage(std::forward<Args>(args)...));
}

/** Advisory warning about questionable but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logVerbosity() >= 1) {
        std::string msg =
            detail::composeMessage(std::forward<Args>(args)...);
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
    }
}

/** Informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logVerbosity() >= 2) {
        std::string msg =
            detail::composeMessage(std::forward<Args>(args)...);
        std::fprintf(stderr, "info: %s\n", msg.c_str());
    }
}

/** panic() unless the condition holds. */
#define VIYOJIT_ASSERT(cond, ...)                                       \
    do {                                                                \
        if (!(cond)) {                                                  \
            ::viyojit::panic("assertion '", #cond, "' failed at ",      \
                             __FILE__, ":", __LINE__, " ",              \
                             ##__VA_ARGS__);                            \
        }                                                               \
    } while (0)

} // namespace viyojit

#endif // VIYOJIT_COMMON_LOGGING_HH
