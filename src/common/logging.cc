#include "common/logging.hh"

#include <atomic>

namespace viyojit
{

namespace
{

std::atomic<int> globalVerbosity{1};

} // namespace

int
logVerbosity()
{
    return globalVerbosity.load(std::memory_order_relaxed);
}

int
setLogVerbosity(int level)
{
    return globalVerbosity.exchange(level, std::memory_order_relaxed);
}

} // namespace viyojit
