/**
 * @file
 * Fundamental types shared across the Viyojit libraries.
 */

#ifndef VIYOJIT_COMMON_TYPES_HH
#define VIYOJIT_COMMON_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <limits>

namespace viyojit
{

/** Virtual address inside an NV-DRAM region. */
using Addr = std::uint64_t;

/** Zero-based page number inside an NV-DRAM region. */
using PageNum = std::uint64_t;

/** Virtual time, in nanoseconds since simulation start. */
using Tick = std::uint64_t;

/** Sentinel for "no page". */
inline constexpr PageNum invalidPage =
    std::numeric_limits<PageNum>::max();

/** Sentinel for "never" / "no deadline". */
inline constexpr Tick maxTick = std::numeric_limits<Tick>::max();

/** Default page size used throughout (x86-64 base pages). */
inline constexpr std::uint64_t defaultPageSize = 4096;

/** Byte-size helpers. */
inline constexpr std::uint64_t operator""_KiB(unsigned long long v)
{
    return v << 10;
}

inline constexpr std::uint64_t operator""_MiB(unsigned long long v)
{
    return v << 20;
}

inline constexpr std::uint64_t operator""_GiB(unsigned long long v)
{
    return v << 30;
}

/** Time helpers producing Ticks (nanoseconds). */
inline constexpr Tick operator""_ns(unsigned long long v)
{
    return v;
}

inline constexpr Tick operator""_us(unsigned long long v)
{
    return v * 1000;
}

inline constexpr Tick operator""_ms(unsigned long long v)
{
    return v * 1000 * 1000;
}

inline constexpr Tick operator""_s(unsigned long long v)
{
    return v * 1000 * 1000 * 1000;
}

/** Convert a tick count to (double) seconds. */
inline constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / 1e9;
}

/** Convert (double) seconds to ticks, rounding to nearest. */
inline constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * 1e9 + 0.5);
}

} // namespace viyojit

#endif // VIYOJIT_COMMON_TYPES_HH
