/**
 * @file
 * Non-owning callable view, in the style of the C++26 (P0792)
 * std::function_ref.
 *
 * The epoch loop passes visitors through several layers
 * (controller -> PagingBackend -> Mmu -> PageTable); with
 * std::function each hop may heap-allocate its capture.  FunctionRef
 * is two words, never allocates, and inlines to an indirect call, so
 * the per-epoch scan paths stay allocation-free.
 *
 * The referee must outlive the FunctionRef.  Passing a temporary
 * lambda as a function argument is fine (it lives for the full call
 * expression); storing a FunctionRef beyond the call is not.
 */

#ifndef VIYOJIT_COMMON_FUNCTION_REF_HH
#define VIYOJIT_COMMON_FUNCTION_REF_HH

#include <memory>
#include <type_traits>
#include <utility>

namespace viyojit
{

template <typename Signature> class FunctionRef;

/** Lightweight non-owning reference to a callable. */
template <typename R, typename... Args> class FunctionRef<R(Args...)>
{
  public:
    template <
        typename F,
        typename = std::enable_if_t<
            !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
            std::is_invocable_r_v<R, F &, Args...>>>
    FunctionRef(F &&f) noexcept
        : obj_(const_cast<void *>(
              static_cast<const void *>(std::addressof(f)))),
          call_([](void *obj, Args... args) -> R {
              return (*static_cast<std::remove_reference_t<F> *>(obj))(
                  std::forward<Args>(args)...);
          })
    {}

    R
    operator()(Args... args) const
    {
        return call_(obj_, std::forward<Args>(args)...);
    }

  private:
    void *obj_;
    R (*call_)(void *, Args...);
};

} // namespace viyojit

#endif // VIYOJIT_COMMON_FUNCTION_REF_HH
