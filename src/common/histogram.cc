#include "common/histogram.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace viyojit
{

// ---------------------------------------------------------------------
// LogHistogram
// ---------------------------------------------------------------------

LogHistogram::LogHistogram(int sub_bucket_bits)
    : subBucketBits_(sub_bucket_bits)
{
    VIYOJIT_ASSERT(sub_bucket_bits >= 0 && sub_bucket_bits <= 16,
                   "unreasonable sub-bucket resolution");
    // 64 log2 tiers, each with 2^subBucketBits linear sub-buckets.
    buckets_.assign(static_cast<std::size_t>(64) << subBucketBits_, 0);
}

std::size_t
LogHistogram::bucketIndex(std::uint64_t value) const
{
    // Values below 2^subBucketBits are indexed exactly.
    if (value < (1ULL << subBucketBits_))
        return static_cast<std::size_t>(value);
    const int tier = 63 - std::countl_zero(value);
    const std::uint64_t sub = (value >> (tier - subBucketBits_)) &
                              ((1ULL << subBucketBits_) - 1);
    return (static_cast<std::size_t>(tier) << subBucketBits_) +
           static_cast<std::size_t>(sub);
}

std::uint64_t
LogHistogram::bucketUpperBound(std::size_t index) const
{
    // The direct-indexed range is values < 2^subBucketBits — i.e.
    // INDICES below 2^subBucketBits, not tiers.  (Testing the tier
    // here used to cover indices up to subBucketBits * 2^subBucketBits,
    // a range bucketIndex never produces: its log arm always yields
    // tier >= subBucketBits.  For those phantom indices the log
    // formula below would shift by a negative count — UB — so the
    // guard must match the encoder's split exactly.)
    if (index < (1ULL << subBucketBits_))
        return index;
    const auto tier = static_cast<int>(index >> subBucketBits_);
    VIYOJIT_ASSERT(tier >= subBucketBits_,
                   "index not produced by bucketIndex");
    const std::uint64_t sub = index & ((1ULL << subBucketBits_) - 1);
    const std::uint64_t base = 1ULL << tier;
    const std::uint64_t step = 1ULL << (tier - subBucketBits_);
    return base + (sub + 1) * step - 1;
}

void
LogHistogram::record(std::uint64_t value)
{
    record(value, 1);
}

void
LogHistogram::record(std::uint64_t value, std::uint64_t n)
{
    if (n == 0)
        return;
    const std::size_t idx = bucketIndex(value);
    VIYOJIT_ASSERT(idx < buckets_.size(), "bucket index out of range");
    buckets_[idx] += n;
    count_ += n;
    sum_ += value * n;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

double
LogHistogram::mean() const
{
    if (count_ == 0)
        return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t
LogHistogram::percentile(double p) const
{
    if (count_ == 0)
        return 0;
    VIYOJIT_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
    const auto target = static_cast<std::uint64_t>(
        p / 100.0 * static_cast<double>(count_) + 0.5);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        if (seen >= target)
            return std::min(bucketUpperBound(i), max_);
    }
    return max_;
}

void
LogHistogram::merge(const LogHistogram &other)
{
    VIYOJIT_ASSERT(other.subBucketBits_ == subBucketBits_,
                   "merging histograms of different resolution");
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
LogHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    sum_ = 0;
    min_ = ~0ULL;
    max_ = 0;
}

// ---------------------------------------------------------------------
// LinearHistogram
// ---------------------------------------------------------------------

LinearHistogram::LinearHistogram(std::uint64_t lo, std::uint64_t hi,
                                 std::size_t bucket_count)
    : lo_(lo), hi_(hi)
{
    VIYOJIT_ASSERT(hi > lo, "empty histogram range");
    VIYOJIT_ASSERT(bucket_count > 0, "zero buckets");
    buckets_.assign(bucket_count, 0);
}

void
LinearHistogram::record(std::uint64_t value)
{
    std::size_t idx;
    if (value < lo_) {
        idx = 0;
    } else if (value >= hi_) {
        idx = buckets_.size() - 1;
    } else {
        idx = static_cast<std::size_t>(
            static_cast<double>(value - lo_) /
            static_cast<double>(hi_ - lo_) *
            static_cast<double>(buckets_.size()));
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
    }
    ++buckets_[idx];
    ++count_;
}

std::uint64_t
LinearHistogram::bucketLo(std::size_t i) const
{
    VIYOJIT_ASSERT(i < buckets_.size(), "bucket index out of range");
    return lo_ + (hi_ - lo_) * i / buckets_.size();
}

void
LinearHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
}

} // namespace viyojit
