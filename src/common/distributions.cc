#include "common/distributions.hh"

#include <cmath>
#include <map>
#include <mutex>
#include <utility>

#include "common/logging.hh"

namespace viyojit
{

std::uint64_t
fnv1aHash64(std::uint64_t value)
{
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (int i = 0; i < 8; ++i) {
        hash ^= (value >> (i * 8)) & 0xff;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

// ---------------------------------------------------------------------
// UniformDistribution
// ---------------------------------------------------------------------

UniformDistribution::UniformDistribution(std::uint64_t n)
    : count_(n)
{
    VIYOJIT_ASSERT(n > 0, "uniform distribution over empty space");
}

std::uint64_t
UniformDistribution::next(Rng &rng)
{
    return rng.nextBounded(count_);
}

void
UniformDistribution::setItemCount(std::uint64_t n)
{
    VIYOJIT_ASSERT(n > 0, "uniform distribution over empty space");
    count_ = n;
}

// ---------------------------------------------------------------------
// ZipfianDistribution
// ---------------------------------------------------------------------

namespace
{

/**
 * Process-wide cache of zeta checkpoints per theta.  Experiment
 * harnesses construct many zipfians over identical (often huge)
 * populations; reusing the largest checkpoint <= n makes each
 * construction incremental.  Guarded for safety although the
 * library's hot paths are single-threaded.
 */
std::mutex zetaCacheLock;
std::map<std::pair<double, std::uint64_t>, double> zetaCache;

} // namespace

ZipfianDistribution::ZipfianDistribution(std::uint64_t n, double theta)
    : count_(n), theta_(theta)
{
    VIYOJIT_ASSERT(n > 0, "zipfian distribution over empty space");
    VIYOJIT_ASSERT(theta > 0.0 && theta < 1.0,
                   "zipfian theta must be in (0, 1)");
    zeta2Theta_ = 1.0 + 1.0 / std::pow(2.0, theta_);
    recompute();
}

double
ZipfianDistribution::zeta(std::uint64_t n)
{
    if (n < lastZetaN_) {
        // Shrink: restart from the best cached checkpoint <= n.
        lastZetaN_ = 0;
        lastZeta_ = 0.0;
    }
    if (lastZetaN_ == 0) {
        std::lock_guard<std::mutex> guard(zetaCacheLock);
        auto it = zetaCache.upper_bound({theta_, n});
        if (it != zetaCache.begin()) {
            --it;
            if (it->first.first == theta_) {
                lastZetaN_ = it->first.second;
                lastZeta_ = it->second;
            }
        }
    }
    double sum = lastZeta_;
    for (std::uint64_t i = lastZetaN_ + 1; i <= n; ++i)
        sum += 1.0 / std::pow(static_cast<double>(i), theta_);
    lastZetaN_ = n;
    lastZeta_ = sum;
    if (n >= 1024) {
        std::lock_guard<std::mutex> guard(zetaCacheLock);
        zetaCache[{theta_, n}] = sum;
        // Bound the cache; keep it from growing per-insert.
        if (zetaCache.size() > 512)
            zetaCache.erase(zetaCache.begin());
    }
    return sum;
}

void
ZipfianDistribution::recompute()
{
    zetan_ = zeta(count_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(count_),
                           1.0 - theta_)) /
           (1.0 - zeta2Theta_ / zetan_);
}

std::uint64_t
ZipfianDistribution::next(Rng &rng)
{
    const double u = rng.nextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const double n = static_cast<double>(count_);
    const auto idx = static_cast<std::uint64_t>(
        n * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return idx >= count_ ? count_ - 1 : idx;
}

void
ZipfianDistribution::setItemCount(std::uint64_t n)
{
    VIYOJIT_ASSERT(n > 0, "zipfian distribution over empty space");
    if (n == count_)
        return;
    count_ = n;
    recompute();
}

// ---------------------------------------------------------------------
// ScrambledZipfianDistribution
// ---------------------------------------------------------------------

ScrambledZipfianDistribution::ScrambledZipfianDistribution(std::uint64_t n,
                                                           double theta)
    : count_(n), inner_(n, theta)
{
}

std::uint64_t
ScrambledZipfianDistribution::next(Rng &rng)
{
    return fnv1aHash64(inner_.next(rng)) % count_;
}

void
ScrambledZipfianDistribution::setItemCount(std::uint64_t n)
{
    count_ = n;
    inner_.setItemCount(n);
}

// ---------------------------------------------------------------------
// ScaledZipfianDistribution
// ---------------------------------------------------------------------

ScaledZipfianDistribution::ScaledZipfianDistribution(std::uint64_t n,
                                                     unsigned scale_shift,
                                                     double theta)
    : count_(n), scaleShift_(scale_shift),
      inner_(n << scale_shift, theta)
{
    VIYOJIT_ASSERT(scale_shift < 32, "unreasonable scale shift");
}

std::uint64_t
ScaledZipfianDistribution::next(Rng &rng)
{
    // Fold the virtual-population rank down, then scatter.
    const std::uint64_t folded = inner_.next(rng) >> scaleShift_;
    return fnv1aHash64(folded) % count_;
}

void
ScaledZipfianDistribution::setItemCount(std::uint64_t n)
{
    count_ = n;
    inner_.setItemCount(n << scaleShift_);
}

// ---------------------------------------------------------------------
// LatestDistribution
// ---------------------------------------------------------------------

LatestDistribution::LatestDistribution(std::uint64_t n, double theta)
    : count_(n), inner_(n, theta)
{
}

std::uint64_t
LatestDistribution::next(Rng &rng)
{
    // Rank 0 in the inner zipfian maps to the newest item.
    const std::uint64_t rank = inner_.next(rng);
    return count_ - 1 - rank;
}

void
LatestDistribution::setItemCount(std::uint64_t n)
{
    count_ = n;
    inner_.setItemCount(n);
}

// ---------------------------------------------------------------------
// HotspotDistribution
// ---------------------------------------------------------------------

HotspotDistribution::HotspotDistribution(std::uint64_t n,
                                         double hot_set_fraction,
                                         double hot_draw_fraction)
    : count_(n),
      hotSetFraction_(hot_set_fraction),
      hotDrawFraction_(hot_draw_fraction)
{
    VIYOJIT_ASSERT(n > 0, "hotspot distribution over empty space");
    VIYOJIT_ASSERT(hot_set_fraction > 0.0 && hot_set_fraction <= 1.0,
                   "hot set fraction out of range");
    VIYOJIT_ASSERT(hot_draw_fraction >= 0.0 && hot_draw_fraction <= 1.0,
                   "hot draw fraction out of range");
}

std::uint64_t
HotspotDistribution::next(Rng &rng)
{
    auto hot_items = static_cast<std::uint64_t>(
        hotSetFraction_ * static_cast<double>(count_));
    if (hot_items == 0)
        hot_items = 1;
    if (hot_items >= count_)
        return rng.nextBounded(count_);

    if (rng.nextBool(hotDrawFraction_))
        return rng.nextBounded(hot_items);
    return hot_items + rng.nextBounded(count_ - hot_items);
}

void
HotspotDistribution::setItemCount(std::uint64_t n)
{
    VIYOJIT_ASSERT(n > 0, "hotspot distribution over empty space");
    count_ = n;
}

} // namespace viyojit
