/**
 * @file
 * CRC32C implementation: slice-by-4 table lookup.  The tables are
 * built at compile time and stored constinit so touching them from a
 * signal handler never trips lazy initialization — this TU is on the
 * sigsafe_lint fault-path audit list and must stay free of calls,
 * allocation, and guard variables.
 */

#include "common/checksum.hh"

namespace viyojit::common
{

namespace
{

struct Crc32cTables
{
    std::uint32_t t[4][256];
};

constexpr Crc32cTables
buildTables()
{
    constexpr std::uint32_t poly = 0x82F63B78u; // Castagnoli, reflected
    Crc32cTables tables{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc >> 1) ^ ((crc & 1u) ? poly : 0u);
        tables.t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
        tables.t[1][i] =
            (tables.t[0][i] >> 8) ^ tables.t[0][tables.t[0][i] & 0xFFu];
        tables.t[2][i] =
            (tables.t[1][i] >> 8) ^ tables.t[0][tables.t[1][i] & 0xFFu];
        tables.t[3][i] =
            (tables.t[2][i] >> 8) ^ tables.t[0][tables.t[2][i] & 0xFFu];
    }
    return tables;
}

constinit const Crc32cTables kTables = buildTables();

} // namespace

std::uint32_t
crc32c(const void *data, std::size_t len, std::uint32_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t crc = ~seed;
    while (len >= 4) {
        crc ^= static_cast<std::uint32_t>(p[0]) |
               (static_cast<std::uint32_t>(p[1]) << 8) |
               (static_cast<std::uint32_t>(p[2]) << 16) |
               (static_cast<std::uint32_t>(p[3]) << 24);
        crc = kTables.t[3][crc & 0xFFu] ^
              kTables.t[2][(crc >> 8) & 0xFFu] ^
              kTables.t[1][(crc >> 16) & 0xFFu] ^
              kTables.t[0][(crc >> 24) & 0xFFu];
        p += 4;
        len -= 4;
    }
    while (len--)
        crc = (crc >> 8) ^ kTables.t[0][(crc ^ *p++) & 0xFFu];
    return ~crc;
}

std::uint32_t
crc32cU64(std::uint64_t value, std::uint32_t seed)
{
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i)
        bytes[i] = static_cast<unsigned char>(value >> (8 * i));
    return crc32c(bytes, sizeof bytes, seed);
}

} // namespace viyojit::common
