/**
 * @file
 * Discrete-event queue driving asynchronous completions (SSD IO,
 * battery events) against the virtual clock.
 */

#ifndef VIYOJIT_SIM_EVENT_QUEUE_HH
#define VIYOJIT_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"
#include "sim/clock.hh"

namespace viyojit::sim
{

/**
 * Min-heap of (time, sequence, callback) events.  Events scheduled for
 * the same tick fire in scheduling order.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    explicit EventQueue(VirtualClock &clock)
        : clock_(clock)
    {}

    /** Schedule a callback at absolute virtual time `when`. */
    void schedule(Tick when, Callback cb);

    /** Schedule a callback `delta` ticks from now. */
    void scheduleAfter(Tick delta, Callback cb);

    /** Time of the earliest pending event, or maxTick when empty. */
    Tick nextEventTime() const;

    /** True when no events are pending. */
    bool empty() const { return heap_.empty(); }

    std::size_t pendingCount() const { return heap_.size(); }

    /**
     * Run all events with time <= `until`, advancing the clock to each
     * event's time; finally advance the clock to `until`.
     */
    void runUntil(Tick until);

    /** Run a single earliest event (advancing the clock to it). */
    bool runOne();

    /**
     * Run up to `max_events` earliest events and stop, leaving the
     * rest pending.  Lets a fault injector cut power at an arbitrary
     * point in the event stream — between two IO completions, in the
     * middle of a retry backoff, one event into an epoch.
     * @return events actually run (< max_events only when drained).
     */
    std::uint64_t runSteps(std::uint64_t max_events);

    /** Drain every pending event. */
    void drain();

    /** Drop all pending events without running them. */
    void clear();

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Entry &o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    VirtualClock &clock_;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace viyojit::sim

#endif // VIYOJIT_SIM_EVENT_QUEUE_HH
