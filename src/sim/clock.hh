/**
 * @file
 * Virtual clock for the simulated substrate.
 *
 * All modelled costs (traps, TLB flushes, SSD IO, op service times)
 * advance this clock; throughput and latency reported by the benches
 * are ratios of virtual time, which makes every experiment exactly
 * reproducible and independent of host speed.
 */

#ifndef VIYOJIT_SIM_CLOCK_HH
#define VIYOJIT_SIM_CLOCK_HH

#include "common/logging.hh"
#include "common/types.hh"

namespace viyojit::sim
{

/** Monotonic nanosecond virtual clock. */
class VirtualClock
{
  public:
    /** Current virtual time. */
    Tick now() const { return now_; }

    /** Advance by a delta. */
    void advance(Tick delta) { now_ += delta; }

    /** Jump forward to an absolute time (must not go backwards). */
    void
    advanceTo(Tick t)
    {
        VIYOJIT_ASSERT(t >= now_, "clock would move backwards");
        now_ = t;
    }

    /** Reset to zero (between experiment repetitions). */
    void reset() { now_ = 0; }

  private:
    Tick now_ = 0;
};

} // namespace viyojit::sim

#endif // VIYOJIT_SIM_CLOCK_HH
