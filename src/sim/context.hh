/**
 * @file
 * Shared simulation context: one clock, one event queue, one stats
 * registry.  Every simulated component (MMU, SSD, battery, Viyojit
 * manager) holds a reference to the same SimContext.
 */

#ifndef VIYOJIT_SIM_CONTEXT_HH
#define VIYOJIT_SIM_CONTEXT_HH

#include "common/stats.hh"
#include "sim/clock.hh"
#include "sim/event_queue.hh"

namespace viyojit::sim
{

/** Bundle of the simulation-wide singletons. */
class SimContext
{
  public:
    SimContext()
        : events_(clock_)
    {}

    SimContext(const SimContext &) = delete;
    SimContext &operator=(const SimContext &) = delete;

    VirtualClock &clock() { return clock_; }
    const VirtualClock &clock() const { return clock_; }

    EventQueue &events() { return events_; }

    StatsRegistry &stats() { return stats_; }
    const StatsRegistry &stats() const { return stats_; }

    /** Current virtual time (convenience). */
    Tick now() const { return clock_.now(); }

  private:
    VirtualClock clock_;
    EventQueue events_;
    StatsRegistry stats_;
};

} // namespace viyojit::sim

#endif // VIYOJIT_SIM_CONTEXT_HH
