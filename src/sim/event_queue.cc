#include "sim/event_queue.hh"

#include <utility>

namespace viyojit::sim
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    VIYOJIT_ASSERT(when >= clock_.now(), "scheduling into the past");
    heap_.push(Entry{when, nextSeq_++, std::move(cb)});
}

void
EventQueue::scheduleAfter(Tick delta, Callback cb)
{
    schedule(clock_.now() + delta, std::move(cb));
}

Tick
EventQueue::nextEventTime() const
{
    return heap_.empty() ? maxTick : heap_.top().when;
}

bool
EventQueue::runOne()
{
    if (heap_.empty())
        return false;
    // priority_queue::top() is const; move out via const_cast of the
    // callback only, then pop.  The entry is never observed again.
    Entry entry = std::move(const_cast<Entry &>(heap_.top()));
    heap_.pop();
    // An event may be delivered late (the caller advanced the clock
    // past it while modelling a synchronous cost); never rewind.
    if (entry.when > clock_.now())
        clock_.advanceTo(entry.when);
    entry.cb();
    return true;
}

std::uint64_t
EventQueue::runSteps(std::uint64_t max_events)
{
    std::uint64_t run = 0;
    while (run < max_events && runOne())
        ++run;
    return run;
}

void
EventQueue::runUntil(Tick until)
{
    while (!heap_.empty() && heap_.top().when <= until)
        runOne();
    if (clock_.now() < until)
        clock_.advanceTo(until);
}

void
EventQueue::drain()
{
    while (runOne()) {
    }
}

void
EventQueue::clear()
{
    while (!heap_.empty())
        heap_.pop();
}

} // namespace viyojit::sim
